// Package suite registers every row of DESIGN.md's per-experiment index on
// the harness registry: one descriptor per table and figure with the
// paper's expectation encoded as inclusive pass bands. The text report, the
// JSON report, and CLI experiment selection all derive from these
// descriptors — there is no second list anywhere.
package suite

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"zenspec/internal/attack"
	"zenspec/internal/fault"
	"zenspec/internal/harness"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/predict"
	"zenspec/internal/revng"
	"zenspec/internal/sandbox"
	"zenspec/internal/speccheck"
	"zenspec/internal/workload"
)

var registry = build()

// Registry returns the process-wide experiment registry. It is built once
// and never mutated afterwards, so concurrent readers are safe.
func Registry() *harness.Registry { return registry }

// secretBytes derives a reproducible attack secret from the run seed.
func secretBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// rateAt finds the eviction rate measured at one set size.
func rateAt(points []revng.EvictionPoint, size int) float64 {
	for _, p := range points {
		if p.SetSize == size {
			return p.Rate
		}
	}
	return -1
}

// table3Platforms mirrors the TABLE III presets of the public facade (the
// suite cannot import package zenspec without a cycle); only the fields the
// experiment consumes are kept here.
var table3Platforms = []struct {
	name string
	sq   int
}{
	{"ryzen9-5900x", 48},
	{"epyc-7543", 48},
	{"ryzen5-5600g", 48},
	{"ryzen7-7735hs", 64},
}

func build() *harness.Registry {
	reg := harness.NewRegistry()

	reg.Register(harness.Experiment{
		ID:    "fig2",
		Title: "execution types and timing classes",
		Paper: "6 timing levels / 8 exec types for (40n,40a)x4; timing matches ground truth",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.Fig2(ctx.Config)
			var r harness.Report
			r.Detail = res.String()
			r.Add("timing_agreement", res.TimingAgree, 0.99, 1)
			r.Add("exec_types", float64(len(res.Rows)), 8, 8)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "table1",
		Title: "state machine validation on random sequences",
		Paper: "the 5-counter state machine models >99.8% of random sequences",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			sequences, length := 50, 64
			if ctx.Quick {
				sequences, length = 16, 48
			}
			res := revng.Table1(ctx.Config, sequences, length)
			var r harness.Report
			r.Detail = res.String()
			r.Add("match_rate", res.MatchRate, 0.995, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "table2",
		Title: "counter organization (IPA dependences)",
		Paper: "C0,C1,C2 select on store+load IPA; C3,C4 on the load IPA only",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.Table2(ctx.Config)
			want := map[string][2]bool{ // {store, load}
				"C0": {true, true}, "C1": {true, true}, "C2": {true, true},
				"C3": {false, true}, "C4": {false, true},
			}
			correct := 0
			for _, row := range res.Rows {
				w := want[row.Counter]
				if row.DependsOnStore == w[0] && row.DependsOnLoad == w[1] {
					correct++
				}
			}
			var r harness.Report
			r.Detail = res.String()
			r.Add("rows_correct", float64(correct), 5, 5)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fig4",
		Title: "hash characteristics of colliding IPA pairs",
		Paper: "colliding load-IPA pairs have XOR folding to zero at bit stride 12",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			targets := 8
			if ctx.Quick {
				targets = 4
			}
			res := revng.Fig4(ctx.Config, targets)
			var r harness.Report
			r.Detail = res.String()
			r.Add("pairs_found", float64(res.Pairs), float64(targets), float64(targets))
			frac := 0.0
			if res.Pairs > 0 {
				frac = float64(res.StrideXORok) / float64(res.Pairs)
			}
			r.Add("stride12_xor_fraction", frac, 1, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fig5",
		Title: "eviction rate vs eviction-set size",
		Paper: "PSFP step between 11 and 12; SSBP gradual, >50% @16 region, high @32",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			sizes, trials := []int{4, 8, 10, 11, 12, 16, 24, 32, 48}, 20
			if ctx.Quick {
				sizes, trials = []int{8, 11, 12, 16, 32}, 8
			}
			res := revng.Fig5(ctx.Config, ctx.Arenas, sizes, trials)
			var r harness.Report
			r.Detail = res.String()
			r.Add("psfp_rate@11", rateAt(res.PSFP, 11), 0, 0.2)
			r.Add("psfp_rate@12", rateAt(res.PSFP, 12), 0.9, 1)
			r.Add("ssbp_rate@16", rateAt(res.SSBP, 16), 0.2, 0.95)
			r.Add("ssbp_rate@32", rateAt(res.SSBP, 32), 0.5, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fig7",
		Title: "collision-finding attempts and distance dependence",
		Paper: "SSBP collisions found in ~2200 attempts (<=4096); PSFP only at equal store-load distance",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			ssbpTrials, psfpTrials := 20, 4
			if ctx.Quick {
				ssbpTrials, psfpTrials = 8, 3
			}
			res := revng.Fig7(ctx.Config, ssbpTrials, psfpTrials)
			var r harness.Report
			r.Detail = res.String()
			r.Add("ssbp_found_fraction", float64(len(res.SSBPAttempts))/float64(ssbpTrials), 0.75, 1)
			r.Add("ssbp_mean_attempts", res.SSBPMean, 300, 4096)
			r.Add("psfp_same_distance_found", float64(res.PSFPSameDistanceFound), float64(psfpTrials), float64(psfpTrials))
			r.Add("psfp_diff_distance_found", float64(res.PSFPDiffDistanceFound), 0, 0)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "table3",
		Title: "platform matrix (one predictor design)",
		Paper: "all four test machines share the PSFP/SSBP design",
		Tags:  []string{"facade"},
		Run: func(ctx harness.Ctx) harness.Report {
			sequences, length := 10, 48
			if ctx.Quick {
				sequences, length = 6, 32
			}
			var r harness.Report
			var sb strings.Builder
			min := 1.0
			for _, p := range table3Platforms {
				cfg := ctx.Config
				cfg.Pipeline.SQSize = p.sq
				res := revng.Table1(cfg, sequences, length)
				fmt.Fprintf(&sb, "%-14s SQ=%d  state-machine match %.2f%%\n", p.name, p.sq, 100*res.MatchRate)
				if res.MatchRate < min {
					min = res.MatchRate
				}
			}
			r.Detail = sb.String()
			r.Add("min_match_rate", min, 0.99, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "isolation",
		Title: "predictor isolation across security domains (Vulnerability 1)",
		Paper: "PSFP flushed on switch; SSBP survives across user/VM/kernel",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.Isolation(ctx.Config)
			var r harness.Report
			r.Detail = res.String()
			r.Add("matrix_rows", float64(len(res.Rows)), 24, 24)
			r.AddBool("vulnerability1", res.Vulnerability1(), true)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "smt",
		Title: "SMT vs single-thread predictor resources",
		Paper: "eviction threshold identical in both modes: resources are duplicated",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.SMTMode(ctx.Config)
			var r harness.Report
			r.Detail = res.String()
			r.Add("smt_threshold", float64(res.SMTThreshold), 12, 12)
			r.Add("single_threshold", float64(res.SingleThreshold), 12, 12)
			r.AddBool("duplicated", res.Duplicated(), true)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "transient-exec",
		Title: "transient execution windows of both mispredictions (Fig 8)",
		Paper: "SSBP misprediction exposes the stale value; PSFP misprediction the forwarded one",
		Tags:  []string{"pipeline"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.TransientExec(ctx.Config)
			var r harness.Report
			r.Detail = res.String()
			r.AddBool("ssbp_leading_g", res.SSBPLeadingG, true)
			r.AddBool("ssbp_arch_correct", res.SSBPArchCorrect, true)
			r.AddBool("ssbp_stale_cached", res.SSBPStaleCached, true)
			r.AddBool("ssbp_arch_cached", res.SSBPArchCached, true)
			r.AddBool("psfp_type_d", res.PSFPTypeD, true)
			r.AddBool("psfp_forward_cached", res.PSFPForwardCached, true)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "transient-update",
		Title: "predictor updates survive transient-window squashes (Fig 9)",
		Paper: "branch, faulty-load and memory-speculation windows all train the predictors",
		Tags:  []string{"pipeline"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.TransientUpdate(ctx.Config)
			var r harness.Report
			r.Detail = res.String()
			r.AddBool("branch_window_squashed", res.BranchWindowSquashed, true)
			r.AddBool("branch_window_trained", res.BranchWindowTrained, true)
			r.AddBool("fault_window_cached", res.FaultWindowCached, true)
			r.AddBool("mem_window_transient", res.MemWindowTransient, true)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "infer",
		Title: "design constants recovered from timing alone",
		Paper: "C0=4, C3=15, C4 limit 3, PSF window 6 aliasing runs, PSFP capacity 12",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := revng.Infer(ctx.Config)
			var r harness.Report
			r.Add("c0_init", float64(res.C0Init), 4, 4)
			r.Add("c3_saturated", float64(res.C3Saturated), 15, 15)
			r.Add("c4_limit", float64(res.RollbacksToSaturate), 3, 3)
			r.Add("psf_window", float64(res.AliasRunsToPSF), 6, 6)
			r.Add("psfp_capacity", float64(res.PSFPEvictionThreshold), 12, 12)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "addrleak",
		Title: "physical-address relation leak through the selection hash",
		Paper: "colliding offsets reveal Fold12(Fi) XOR Fold12(Fj) for every page pair",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			pages := 5
			if ctx.Quick {
				pages = 4
			}
			res := revng.AddrLeak(ctx.Config, pages)
			var r harness.Report
			r.Detail = res.String()
			r.Add("page_pairs", float64(res.Pages), 3, float64(pages*(pages-1)/2))
			frac := 0.0
			if res.Pages > 0 {
				frac = float64(res.Recovered) / float64(res.Pages)
			}
			r.Add("recovered_fraction", frac, 1, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "table4",
		Title: "MDU characterization (AMD vs Intel vs ARM)",
		Paper: "AMD: 6+2-bit counters selected by a 12-bit hash of the whole load IPA",
		Tags:  []string{"facade"},
		Run: func(ctx harness.Ctx) harness.Report {
			rows := predict.CharacterizationTable()
			var r harness.Report
			var sb strings.Builder
			amdOK := false
			for _, row := range rows {
				fmt.Fprintf(&sb, "%-14s state machine: %-24s selection: %s\n", row.Design, row.StateMachineBits, row.Selection)
				if strings.Contains(row.Design, "amd") && strings.Contains(row.Selection, "12-bit hash") {
					amdOK = true
				}
			}
			r.Detail = sb.String()
			r.Add("designs", float64(len(rows)), 3, 3)
			r.AddBool("amd_12bit_hash_selection", amdOK, true)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "spectre-stl",
		Title: "out-of-place Spectre-STL leak",
		Paper: "99.95% accuracy at 416 B/s; one victim call per byte",
		Tags:  []string{"attack"},
		Run: func(ctx harness.Ctx) harness.Report {
			n := 256
			if ctx.Quick {
				n = 64
			}
			secret := secretBytes(ctx.Config.Seed, n)
			res := attack.SpectreSTL(ctx.Config, secret, attack.STLOptions{})
			var r harness.Report
			r.Detail = res.String()
			r.Add("accuracy", res.Accuracy, 0.95, 1)
			r.Add("bytes_per_second", res.BytesPerSecond, 100, 1e9)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "spectre-ctl",
		Title: "Spectre-CTL cross-process leak",
		Paper: "99.97% accuracy at 384 B/s without shared memory",
		Tags:  []string{"attack"},
		Run: func(ctx harness.Ctx) harness.Report {
			n := 256
			if ctx.Quick {
				n = 32
			}
			secret := secretBytes(ctx.Config.Seed, n)
			res := attack.SpectreCTL(ctx.Config, secret, attack.CTLOptions{})
			var r harness.Report
			r.Detail = res.String()
			r.Add("accuracy", res.Accuracy, 0.95, 1)
			r.Add("bytes_per_second", res.BytesPerSecond, 100, 1e9)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "spectre-ctl-browser",
		Title: "Spectre-CTL under a coarse jittered browser timer",
		Paper: "81.1% accuracy at ~170 B/s with a ~10 ns quantized timer",
		Tags:  []string{"attack"},
		Run: func(ctx harness.Ctx) harness.Report {
			n := 256
			if ctx.Quick {
				n = 32
			}
			secret := secretBytes(ctx.Config.Seed, n)
			res := attack.SpectreCTLBrowser(ctx.Config, secret)
			var r harness.Report
			r.Detail = res.String()
			r.Add("accuracy", res.Accuracy, 0.5, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "sandbox-escape",
		Title: "leak from inside the browser sandbox model",
		Paper: "the attack works with masked memory, JIT-only code, no flush, coarse timer",
		Tags:  []string{"attack"},
		Run: func(ctx harness.Ctx) harness.Report {
			n := 4
			if ctx.Quick {
				n = 2
			}
			secret := secretBytes(ctx.Config.Seed+1, n)
			var r harness.Report
			res, err := sandbox.Escape(ctx.Config, secret)
			if err != nil {
				r.Detail = "sandbox escape error: " + err.Error()
				r.Add("correct_fraction", 0, 0.5, 1)
				return r
			}
			r.Detail = res.String()
			r.Add("correct_fraction", float64(res.Correct)/float64(n), 0.5, 1)
			return r
		},
	})

	// fig11's sample grid is embarrassingly parallel — every (model, sample)
	// cell is a fresh machine seeded only from its indices — so it carries a
	// RangeSpec: the service can split the grid across shards (and machines),
	// and the unsharded run funnels through the same Run+Merge pair. Only the
	// SVM at the end is serial, and it lives in Merge.
	fig11Opts := func(ctx harness.Ctx) attack.FingerprintOptions {
		train, test := 10, 5
		if ctx.Quick {
			train, test = 6, 3
		}
		return attack.FingerprintOptions{
			ScanRange: 128, Rounds: 14,
			TrainSamples: train, TestSamples: test, Seed: ctx.Config.Seed,
		}
	}
	reg.Register(harness.Experiment{
		ID:    "fig11",
		Title: "SSBP fingerprinting of CNN models",
		Paper: "SVM over C3 frequency vectors separates 6 models (>95.5% on hardware)",
		Tags:  []string{"attack"},
		Range: &harness.RangeSpec{
			Trials: func(ctx harness.Ctx) int {
				return attack.FingerprintCells(fig11Opts(ctx))
			},
			Run: func(ctx harness.Ctx, lo, hi int) ([]byte, error) {
				return json.Marshal(attack.FingerprintRange(ctx.Config, fig11Opts(ctx), lo, hi))
			},
			Merge: func(ctx harness.Ctx, frags []harness.Fragment) harness.Report {
				var samples []attack.FingerprintSample
				for _, f := range frags {
					var part []attack.FingerprintSample
					if err := json.Unmarshal(f.Data, &part); err != nil {
						return harness.Report{
							Status: harness.StatusFailed,
							Error:  fmt.Sprintf("fingerprint fragment [%d, %d): %v", f.Lo, f.Hi, err),
						}
					}
					samples = append(samples, part...)
				}
				var r harness.Report
				res, err := attack.FingerprintAssemble(fig11Opts(ctx), samples)
				if err != nil {
					r.Detail = "fingerprint error: " + err.Error()
					r.Add("svm_accuracy", 0, 0.7, 1)
					return r
				}
				r.Detail = res.String()
				r.Add("svm_accuracy", res.Accuracy, 0.7, 1)
				return r
			},
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fig12",
		Title: "SSBD overhead on SPECrate-like kernels",
		Paper: ">20% on perlbench and exchange2, ~0% on x264",
		Tags:  []string{"workload", "defense"},
		Run: func(ctx harness.Ctx) harness.Report {
			res := workload.SSBDOverhead(ctx.Config, workload.SpecKernels())
			var r harness.Report
			r.Detail = res.String()
			byName := map[string]float64{}
			for _, row := range res.Rows {
				byName[row.Name] = row.OverheadFrac
			}
			r.Add("overhead_perlbench", byName["perlbench"], 0.15, 1)
			r.Add("overhead_exchange2", byName["exchange2"], 0.15, 1)
			r.Add("overhead_x264", byName["x264"], 0, 0.05)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "ssbd-blockstate",
		Title: "SSBD pins entries to the block state; PSFD does not stop the attacks",
		Paper: "under SSBD every non-aliasing run stalls (E) and aliasing runs read A; PSFD leaves STL intact",
		Tags:  []string{"defense"},
		Run: func(ctx harness.Ctx) harness.Report {
			var r harness.Report
			scfg := ctx.Config
			scfg.SSBD = true
			l := revng.NewLab(scfg)
			s := l.PlaceStld()
			countType := func(obs []revng.Observation, want predict.ExecType) float64 {
				hit := 0
				for _, o := range obs {
					if o.TrueType == want {
						hit++
					}
				}
				return float64(hit) / float64(len(obs))
			}
			nonAlias := s.Phi(revng.Seq(12))
			alias := s.Phi(revng.Seq(-6))
			r.Detail = fmt.Sprintf("SSBD: phi(12n) types %s; phi(6a) types %s",
				revng.TypesString(revng.Types(nonAlias)), revng.TypesString(revng.Types(alias)))
			r.Add("ssbd_nonalias_E_fraction", countType(nonAlias, predict.TypeE), 1, 1)
			r.Add("ssbd_alias_A_fraction", countType(alias, predict.TypeA), 1, 1)

			pcfg := ctx.Config
			pcfg.PSFD = true
			stl := attack.SpectreSTL(pcfg, secretBytes(ctx.Config.Seed, 8), attack.STLOptions{})
			r.Add("psfd_stl_accuracy", stl.Accuracy, 0.9, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "defenses",
		Title: "mitigation matrix (SSBD, PSFD, flush, salt rotation, secure timer)",
		Paper: "SSBD and the VI-B sketches stop their attack class; PSFD is ineffective",
		Tags:  []string{"defense"},
		Run: func(ctx harness.Ctx) harness.Report {
			stlBytes, ctlBytes := 16, 8
			if ctx.Quick {
				stlBytes, ctlBytes = 8, 4
			}
			stlSecret := secretBytes(ctx.Config.Seed, stlBytes)
			ctlSecret := secretBytes(ctx.Config.Seed, ctlBytes)
			with := func(mutate func(*kernel.Config)) kernel.Config {
				cfg := ctx.Config
				mutate(&cfg)
				return cfg
			}
			var r harness.Report
			r.Add("ssbd_stl_accuracy", attack.SpectreSTL(with(func(c *kernel.Config) { c.SSBD = true }),
				stlSecret, attack.STLOptions{}).Accuracy, 0, 0.2)
			r.Add("psfd_stl_accuracy", attack.SpectreSTL(with(func(c *kernel.Config) { c.PSFD = true }),
				stlSecret, attack.STLOptions{}).Accuracy, 0.9, 1)
			r.Add("ssbd_ctl_accuracy", attack.SpectreCTL(with(func(c *kernel.Config) { c.SSBD = true }),
				ctlSecret, attack.CTLOptions{Sweeps: 1}).Accuracy, 0, 0.2)
			r.Add("flush_ssbp_ctl_accuracy", attack.SpectreCTL(with(func(c *kernel.Config) { c.FlushSSBPOnSwitch = true }),
				ctlSecret, attack.CTLOptions{Sweeps: 1}).Accuracy, 0, 0.2)
			r.Add("rotate_salt_ctl_accuracy", attack.SpectreCTL(with(func(c *kernel.Config) { c.RotateSalt = true }),
				ctlSecret, attack.CTLOptions{Sweeps: 1, VictimDomain: kernel.DomainKernel}).Accuracy, 0, 0.2)
			r.Add("secure_timer_stl_accuracy", attack.SpectreSTL(with(func(c *kernel.Config) { c.TimerQuantum = 4096 }),
				stlSecret, attack.STLOptions{}).Accuracy, 0, 0.3)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "stl-inplace",
		Title: "in-place vs out-of-place Spectre-STL training cost",
		Paper: "in-place training needs many victim runs per byte; out-of-place one",
		Tags:  []string{"attack"},
		Run: func(ctx harness.Ctx) harness.Report {
			secret := secretBytes(ctx.Config.Seed, 8)
			inPlace := attack.SpectreSTLInPlace(ctx.Config, secret)
			outOfPlace := attack.SpectreSTL(ctx.Config, secret, attack.STLOptions{})
			var r harness.Report
			r.Detail = inPlace.String() + "\n" + outOfPlace.String()
			r.Add("inplace_accuracy", inPlace.Accuracy, 0.9, 1)
			r.Add("outofplace_accuracy", outOfPlace.Accuracy, 0.9, 1)
			ratio := 0.0
			if outOfPlace.VictimCalls > 0 {
				ratio = float64(inPlace.VictimCalls) / float64(outOfPlace.VictimCalls)
			}
			r.Add("victim_call_ratio", ratio, 1.5, 1e9)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "ablations",
		Title: "design ablation: PSFP capacity vs eviction threshold",
		Paper: "the Fig 5 threshold tracks the modeled capacity (12 at size 12)",
		Tags:  []string{"revng"},
		Run: func(ctx harness.Ctx) harness.Report {
			sizes := []int{8, 12, 16}
			if ctx.Quick {
				sizes = []int{12}
			}
			points := revng.PSFPSizeAblation(ctx.Config, sizes)
			var r harness.Report
			r.Detail = revng.AblationString("psfp-size", points)
			monotonic := true
			for i, p := range points {
				if p.Threshold <= 0 {
					monotonic = false
				}
				if i > 0 && p.Threshold < points[i-1].Threshold {
					monotonic = false
				}
				if p.Value == 12 {
					r.Add("threshold@size12", float64(p.Threshold), 12, 12)
				}
			}
			r.AddBool("thresholds_track_capacity", monotonic, true)
			return r
		},
	})

	// --- Fault-injection family: the headline results replayed on a machine
	// that misbehaves. Each row resolves the run's fault plan (the -faults
	// plan when one is active, else the documented default intensity) and
	// asserts the paper bands still hold at that ceiling — the robustness
	// claim EXPERIMENTS.md's noise-ceiling table documents.

	faultCtx := func(ctx harness.Ctx) harness.Ctx {
		if !ctx.Config.Faults.Active() {
			ctx.Config.Faults = fault.Default()
		}
		return ctx
	}

	reg.Register(harness.Experiment{
		ID:    "fault-stl",
		Title: "Spectre-STL at the documented noise ceiling",
		Paper: "majority-vote calibration recovers the full secret under the default fault plan",
		Tags:  []string{"attack", "fault"},
		Run: func(ctx harness.Ctx) harness.Report {
			ctx = faultCtx(ctx)
			n := 16
			if ctx.Quick {
				n = 8
			}
			secret := secretBytes(ctx.Config.Seed, n)
			res := attack.SpectreSTL(ctx.Config, secret, attack.STLOptions{Votes: 3, Retries: 3})
			var r harness.Report
			r.Detail = ctx.Config.Faults.String() + "\n" + res.String()
			r.Add("accuracy", res.Accuracy, 1, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fault-ctl",
		Title: "Spectre-CTL at the documented noise ceiling",
		Paper: "the SSBP covert channel survives the default fault plan with per-byte voting",
		Tags:  []string{"attack", "fault"},
		Run: func(ctx harness.Ctx) harness.Report {
			ctx = faultCtx(ctx)
			n := 8
			if ctx.Quick {
				n = 4
			}
			secret := secretBytes(ctx.Config.Seed, n)
			res := attack.SpectreCTL(ctx.Config, secret, attack.CTLOptions{Votes: 3, Sweeps: 3})
			var r harness.Report
			r.Detail = ctx.Config.Faults.String() + "\n" + res.String()
			r.Add("accuracy", res.Accuracy, 1, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fault-fig4",
		Title: "hash-collision mining under predictor pollution",
		Paper: "mined pairs keep the stride-12 XOR property despite spurious trainings",
		Tags:  []string{"revng", "fault"},
		Run: func(ctx harness.Ctx) harness.Report {
			ctx = faultCtx(ctx)
			targets := 4
			if ctx.Quick {
				targets = 3
			}
			res := revng.Fig4(ctx.Config, targets)
			var r harness.Report
			r.Detail = ctx.Config.Faults.String() + "\n" + res.String()
			r.Add("pairs_found", float64(res.Pairs), float64(targets), float64(targets))
			frac := 0.0
			if res.Pairs > 0 {
				frac = float64(res.StrideXORok) / float64(res.Pairs)
			}
			r.Add("stride12_xor_fraction", frac, 1, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fault-fig5",
		Title: "eviction-rate curves under injected noise",
		Paper: "the PSFP capacity step and the gradual SSBP curve survive the fault plan",
		Tags:  []string{"revng", "fault"},
		Run: func(ctx harness.Ctx) harness.Report {
			ctx = faultCtx(ctx)
			// More trials per cell than the clean row: the per-cell verdicts
			// are sound under faults (min-of-3 reads), but the rates
			// themselves wobble more, so the estimate needs a bigger sample.
			sizes, trials := []int{8, 11, 12, 16, 32}, 16
			if ctx.Quick {
				sizes, trials = []int{11, 12, 16, 32}, 10
			}
			res := revng.Fig5(ctx.Config, ctx.Arenas, sizes, trials)
			var r harness.Report
			r.Detail = ctx.Config.Faults.String() + "\n" + res.String()
			// Injected PSFP evictions raise the below-capacity rate
			// (a faulted eviction is indistinguishable from a real one), so
			// the sub-threshold band is looser than the clean row's.
			r.Add("psfp_rate@11", rateAt(res.PSFP, 11), 0, 0.55)
			r.Add("psfp_rate@12", rateAt(res.PSFP, 12), 0.85, 1)
			r.Add("ssbp_rate@16", rateAt(res.SSBP, 16), 0.15, 0.95)
			r.Add("ssbp_rate@32", rateAt(res.SSBP, 32), 0.5, 1)
			return r
		},
	})

	reg.Register(harness.Experiment{
		ID:    "fault-fig7",
		Title: "collision finding under injected noise",
		Paper: "SSBP collisions are still found within the 4096-tag budget under faults",
		Tags:  []string{"revng", "fault"},
		Run: func(ctx harness.Ctx) harness.Report {
			ctx = faultCtx(ctx)
			ssbpTrials, psfpTrials := 8, 3
			if ctx.Quick {
				ssbpTrials, psfpTrials = 6, 2
			}
			res := revng.Fig7(ctx.Config, ssbpTrials, psfpTrials)
			var r harness.Report
			r.Detail = ctx.Config.Faults.String() + "\n" + res.String()
			r.Add("ssbp_found_fraction", float64(len(res.SSBPAttempts))/float64(ssbpTrials), 0.75, 1)
			r.Add("ssbp_mean_attempts", res.SSBPMean, 300, 4096)
			r.Add("psfp_same_distance_found", float64(res.PSFPSameDistanceFound), float64(psfpTrials), float64(psfpTrials))
			r.Add("psfp_diff_distance_found", float64(res.PSFPDiffDistanceFound), 0, 0)
			return r
		},
	})

	// fault-harness exercises ResilientTrials itself, so its RangeSpec rides
	// directly on ResilientTrialRange: each shard carries its range's values
	// and TrialStats, and Merge folds the stats in range order — the same
	// fold one loop over [0, n) performs.
	type faultHarnessFrag struct {
		Vals  []int64            `json:"vals"`
		Stats harness.TrialStats `json:"stats"`
	}
	faultHarnessPol := harness.TrialPolicy{Retries: 3}
	reg.Register(harness.Experiment{
		ID:    "fault-harness",
		Title: "resilient trial loop under injected trial faults",
		Paper: "retries, panic isolation and deadlines turn injected failures into a degraded-but-complete report",
		Tags:  []string{"harness", "fault"},
		Range: &harness.RangeSpec{
			Trials: func(ctx harness.Ctx) int {
				if ctx.Quick {
					return 32
				}
				return 64
			},
			Run: func(ctx harness.Ctx, lo, hi int) ([]byte, error) {
				ctx = faultCtx(ctx)
				vals, stats := harness.ResilientTrialRange(ctx, "fault-harness", faultHarnessPol, lo, hi,
					func(_ harness.Ctx, trial, attempt int, seed int64) (int64, error) { return seed, nil })
				return json.Marshal(faultHarnessFrag{Vals: vals, Stats: stats})
			},
			Merge: func(ctx harness.Ctx, frags []harness.Fragment) harness.Report {
				ctx = faultCtx(ctx)
				const id = "fault-harness"
				var vals []int64
				var stats harness.TrialStats
				for _, f := range frags {
					var part faultHarnessFrag
					if err := json.Unmarshal(f.Data, &part); err != nil {
						return harness.Report{
							Status: harness.StatusFailed,
							Error:  fmt.Sprintf("fault-harness fragment [%d, %d): %v", f.Lo, f.Hi, err),
						}
					}
					vals = append(vals, part.Vals...)
					stats.Merge(part.Stats)
				}
				n := len(vals)
				plan := ctx.Config.Faults
				// The expected value of each trial is fully determined by the
				// plan: the first attempt the plan does not sabotage succeeds
				// and returns its derived seed.
				correct := 0
				for trial, v := range vals {
					for attempt := 0; attempt <= faultHarnessPol.Retries; attempt++ {
						if plan.TrialFaultAt(id, trial, attempt) == fault.TrialNone {
							if v == harness.AttemptSeed(ctx.Config.Seed, id, trial, attempt) {
								correct++
							}
							break
						}
					}
				}
				var r harness.Report
				r.Detail = fmt.Sprintf("%s\ntrials %d attempts %d retried %d recovered %d overruns %d injected %d failed %d",
					plan.String(), stats.Trials, stats.Attempts, stats.Retried,
					stats.Recovered, stats.Overruns, stats.Injected, stats.Failed)
				r.Add("values_correct", float64(correct), float64(n), float64(n))
				r.Add("trials_failed", float64(stats.Failed), 0, 0)
				r.Add("faults_injected", float64(stats.Injected), 1, float64(4*n))
				r.RecordTrials(stats)
				return r
			},
		},
	})

	reg.Register(harness.Experiment{
		ID:    "speccheck-scale",
		Title: "incremental speccheck on a generated 100k-instruction program",
		Paper: "the summary cache reproduces the whole-program scan exactly; a warm re-scan explores zero states and a one-instruction edit recomputes only its dependency closure",
		Tags:  []string{"speccheck", "static"},
		Run: func(ctx harness.Ctx) harness.Report {
			// Wall-clock speedups live in BENCH_speccheck.json (cmd/speccheck
			// -bench); here only deterministic counters are reported so the
			// report is byte-identical across runs and parallelism.
			insts := 100_000
			if ctx.Quick {
				insts = 20_000
			}
			code := speccheck.GenProgram(ctx.Config.Seed, insts)
			opts := speccheck.Options{}
			want := speccheck.AnalyzeAll(code, opts)

			c := speccheck.NewCache()
			cold := c.Analyze(code, opts)
			afterCold := c.Stats()
			warm := c.Analyze(code, opts)
			afterWarm := c.Stats()

			// NOP out a mid-program instruction: only sources whose closure
			// covers the slot may recompute.
			edited := append([]byte(nil), code...)
			isa.Inst{Op: isa.NOP}.Encode(edited[(insts/2)*isa.InstBytes:])
			edit := c.Analyze(edited, opts)
			afterEdit := c.Stats()
			editWant := speccheck.AnalyzeAll(edited, opts)

			recomputed := afterEdit.SourceMisses - afterWarm.SourceMisses
			var r harness.Report
			r.Detail = fmt.Sprintf("insts %d sources %d findings %d states %d edit recomputed %d source(s)",
				insts, afterCold.Sources, len(want.Findings), afterCold.StatesExplored, recomputed)
			r.AddBool("cold_identical", reflect.DeepEqual(cold, want), true)
			r.AddBool("warm_identical", reflect.DeepEqual(warm, want), true)
			r.AddBool("edit_identical", reflect.DeepEqual(edit, editWant), true)
			r.Add("findings", float64(len(want.Findings)), 1, float64(insts))
			r.Add("warm_program_hits", float64(afterWarm.ProgramHits-afterCold.ProgramHits), 1, 1)
			r.Add("warm_states_explored", float64(afterWarm.StatesExplored-afterCold.StatesExplored), 0, 0)
			r.Add("edit_recomputed_fraction", float64(recomputed)/float64(afterCold.Sources), 0, 0.25)
			return r
		},
	})

	return reg
}
