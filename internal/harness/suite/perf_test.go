package suite

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"zenspec/internal/harness"
	"zenspec/internal/kernel"
)

// TestParallelNeverRegressesSerial guards the adaptive serial fallback: with
// goroutine dispatch gated on measured per-trial cost (see
// harness.TrialsArena), asking for workers must never make the quick suite
// meaningfully slower than running it serially. Before the fallback, the
// cheapest grids (fig5, table2) ran at 0.7× under -parallel 8 because
// dispatch cost more than the trials.
//
// The margin is 10% plus a small absolute slack so scheduler noise on a
// sub-second total cannot flake the test; a real regression (cheap trial
// loops paying goroutine dispatch again) is far larger.
func TestParallelNeverRegressesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing comparison; not representative under the race detector")
	}
	run := func(workers int) time.Duration {
		cfg := kernel.Config{Seed: 42, Parallelism: workers}
		start := time.Now()
		if _, err := Registry().Run(harness.Ctx{Config: cfg, Quick: true}, nil); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(1) // warm build caches and pools so neither timed run pays them
	serial := run(1)
	parallel := run(8)
	limit := serial + serial/10 + 250*time.Millisecond
	if parallel > limit {
		t.Errorf("quick suite at 8 workers took %v, serial %v: parallel regresses serial by more than 10%%",
			parallel, serial)
	}
	t.Logf("quick suite: serial %v, 8 workers %v", serial, parallel)
}

// TestConcurrentExperimentsNoBleed runs two experiments at the same time in
// one process and checks both against their solo baselines. Every pooled
// resource the allocation-free refactor introduced — recycled run states and
// episode clones, decoded-page caches, arena-backed trial scratch, reused
// Flush+Reload hit buffers — is per-core or per-worker by construction;
// under `go test -race` this test turns any accidental sharing into a race
// report, and the byte comparison catches silent cross-trial bleed even
// when it is not a data race.
func TestConcurrentExperimentsNoBleed(t *testing.T) {
	solo := func(id string) ([]byte, error) {
		cfg := kernel.Config{Seed: 42, Parallelism: 2}
		rep, err := Registry().Run(harness.Ctx{Config: cfg, Quick: true}, []string{id})
		if err != nil {
			return nil, err
		}
		return rep.StableJSON()
	}
	ids := []string{"spectre-stl", "fig5"}
	want := map[string][]byte{}
	for _, id := range ids {
		b, err := solo(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = b
	}
	got := make([][]byte, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = solo(id)
		}()
	}
	wg.Wait()
	for i, id := range ids {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(got[i], want[id]) {
			t.Errorf("%s run concurrently with %s differs from its solo run", id, ids[1-i])
		}
	}
}
