//go:build !race

package suite

// raceEnabled reports whether this test binary was built with -race; timing
// assertions skip themselves there.
const raceEnabled = false
