package suite

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"zenspec/internal/fault"
	"zenspec/internal/harness"
	"zenspec/internal/kernel"
)

// TestRegistryCoversDesignIndex pins the registry to DESIGN.md's
// per-experiment index: every row present, in report order, exactly once.
func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{
		"fig2", "table1", "table2", "fig4", "fig5", "fig7", "table3",
		"isolation", "smt", "transient-exec", "transient-update", "infer",
		"addrleak", "table4", "spectre-stl", "spectre-ctl",
		"spectre-ctl-browser", "sandbox-escape", "fig11", "fig12",
		"ssbd-blockstate", "defenses", "stl-inplace", "ablations",
		"fault-stl", "fault-ctl", "fault-fig4", "fault-fig5", "fault-fig7",
		"fault-harness", "speccheck-scale",
	}
	exps := Registry().All()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Errorf("experiment %d is %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" {
			t.Errorf("%s: missing title or paper expectation", e.ID)
		}
		if len(e.Tags) == 0 {
			t.Errorf("%s: missing tags", e.ID)
		}
	}
}

// TestSuiteDeterministicAcrossWorkers is the harness's core contract: the
// stable report of a run is byte-identical at any worker count. The subset
// covers every refactored trial-loop shape — eviction sweeps (fig5),
// collision searches (fig7), chunked sequence labs (table1), and a sharded
// attack (spectre-stl at 64 quick bytes = 2 shards).
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "fig5", "fig7", "spectre-stl"}
	run := func(workers int) []byte {
		cfg := kernel.Config{Seed: 42, Parallelism: workers}
		rep, err := Registry().Run(harness.Ctx{Config: cfg, Quick: true}, ids)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(serial, got) {
			t.Errorf("report at %d workers differs from serial run:\nserial: %s\n%d workers: %s",
				workers, serial, workers, got)
		}
	}
}

// TestTrialSeedNoCollisionsAcrossRegistry scans every (experiment ID, trial)
// pair for TrialSeed collisions — distinct coordinates must never share an
// RNG stream, or two "independent" trials would be correlated.
func TestTrialSeedNoCollisionsAcrossRegistry(t *testing.T) {
	var ids []string
	for _, e := range Registry().All() {
		ids = append(ids, e.ID)
	}
	for _, seed := range []int64{0, 5, 42} {
		if dups := harness.SeedCollisions(seed, ids, 512); len(dups) != 0 {
			t.Errorf("seed %d: %v", seed, dups)
		}
	}
}

// TestFaultedSuiteDeterministicAcrossWorkers extends the determinism contract
// to faulted runs: the same plan and seed yield byte-identical stable reports
// at 1, 2 and 8 workers. Machine faults consume each machine's private
// injector stream serially; trial faults are pure hashes of their coordinates.
func TestFaultedSuiteDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"fault-stl", "fault-fig5", "fault-harness"}
	run := func(workers int) []byte {
		cfg := kernel.Config{Seed: 42, Parallelism: workers, Faults: fault.Default()}
		rep, err := Registry().Run(harness.Ctx{Config: cfg, Quick: true}, ids)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	if !bytes.Contains(serial, []byte(`"faults"`)) {
		t.Fatalf("faulted report does not echo its plan:\n%s", serial)
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(serial, got) {
			t.Errorf("faulted report at %d workers differs from serial run:\nserial: %s\n%d workers: %s",
				workers, serial, workers, got)
		}
	}
}

// TestSuiteDegradedReport: one experiment whose trial loop always fails must
// come out degraded with its failure provenance, without dragging down the
// rows that validate cleanly.
func TestSuiteDegradedReport(t *testing.T) {
	reg := harness.NewRegistry()
	reg.Register(harness.Experiment{
		ID: "healthy", Title: "healthy", Paper: "passes", Tags: []string{"t"},
		Run: func(ctx harness.Ctx) harness.Report {
			var r harness.Report
			r.Add("ok", 1, 1, 1)
			return r
		},
	})
	reg.Register(harness.Experiment{
		ID: "doomed", Title: "doomed", Paper: "always fails", Tags: []string{"t"},
		Run: func(ctx harness.Ctx) harness.Report {
			vals, stats := harness.ResilientTrials(ctx, "doomed", harness.TrialPolicy{Retries: 1}, 4,
				func(_ harness.Ctx, trial, attempt int, seed int64) (int, error) {
					if trial == 2 {
						return 0, errors.New("broken fixture")
					}
					return 1, nil
				})
			var r harness.Report
			ok := 0
			for _, v := range vals {
				ok += v
			}
			r.Add("trials_ok", float64(ok), 4, 4)
			r.RecordTrials(stats)
			return r
		},
	})
	rep, err := reg.Run(harness.Ctx{Config: kernel.Config{Seed: 1, Parallelism: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]harness.Report{}
	for _, e := range rep.Experiments {
		byID[e.ID] = e
	}
	if h := byID["healthy"]; !h.Pass || h.Status != harness.StatusClean {
		t.Fatalf("healthy row dragged down: %+v", h)
	}
	d := byID["doomed"]
	if d.Pass {
		t.Fatal("doomed row passed")
	}
	if d.Status != harness.StatusDegraded {
		t.Fatalf("doomed status %q, want degraded", d.Status)
	}
	if d.Trouble == nil || d.Trouble.Failed != 1 || d.Trouble.FirstError == "" {
		t.Fatalf("missing failure provenance: %+v", d.Trouble)
	}
	if got := rep.Degraded(); len(got) != 1 || got[0] != "doomed" {
		t.Fatalf("suite degraded list %v, want [doomed]", got)
	}
	if rep.AllPass() {
		t.Fatal("suite passed with a failing row")
	}
}

// TestRangeShardIdentity proves the service's trial-range sharding contract
// on a real rangeable experiment: fault-harness (ResilientTrialRange under
// the default plan), split 1/2/4 ways with metrics and profiles on, must
// merge byte-identically to the unsharded shard report. fig11's
// decomposition is covered at attack level (TestFingerprintRangeIdentity)
// where the grid can be shrunk — one full fig11 run costs ~50s.
func TestRangeShardIdentity(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"fault-harness"} {
		id := id
		t.Run(id, func(t *testing.T) {
			ctx := harness.Ctx{
				Config:  kernel.Config{Seed: 42, Parallelism: 2},
				Quick:   true,
				Metrics: true,
				Profile: true,
			}
			want, err := reg.RunShard(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			want.WallMS = 0
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			n, err := reg.Trials(ctx, id)
			if err != nil || n < 4 {
				t.Fatalf("Trials(%s) = %d, %v; want a splittable count", id, n, err)
			}
			for _, k := range []int{1, 2, 4} {
				var parts []harness.PartialReport
				for i := 0; i < k; i++ {
					p, err := reg.RunTrialRange(ctx, id, i*n/k, (i+1)*n/k)
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, p)
				}
				got, err := reg.MergeTrialRanges(ctx, id, parts)
				if err != nil {
					t.Fatal(err)
				}
				got.WallMS = 0
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Errorf("%s split %d-way differs from unsharded run", id, k)
				}
			}
		})
	}
}
