package suite

import (
	"bytes"
	"testing"

	"zenspec/internal/harness"
	"zenspec/internal/kernel"
)

// TestRegistryCoversDesignIndex pins the registry to DESIGN.md's
// per-experiment index: every row present, in report order, exactly once.
func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{
		"fig2", "table1", "table2", "fig4", "fig5", "fig7", "table3",
		"isolation", "smt", "transient-exec", "transient-update", "infer",
		"addrleak", "table4", "spectre-stl", "spectre-ctl",
		"spectre-ctl-browser", "sandbox-escape", "fig11", "fig12",
		"ssbd-blockstate", "defenses", "stl-inplace", "ablations",
	}
	exps := Registry().All()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Errorf("experiment %d is %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" {
			t.Errorf("%s: missing title or paper expectation", e.ID)
		}
		if len(e.Tags) == 0 {
			t.Errorf("%s: missing tags", e.ID)
		}
	}
}

// TestSuiteDeterministicAcrossWorkers is the harness's core contract: the
// stable report of a run is byte-identical at any worker count. The subset
// covers every refactored trial-loop shape — eviction sweeps (fig5),
// collision searches (fig7), chunked sequence labs (table1), and a sharded
// attack (spectre-stl at 64 quick bytes = 2 shards).
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "fig5", "fig7", "spectre-stl"}
	run := func(workers int) []byte {
		cfg := kernel.Config{Seed: 42, Parallelism: workers}
		rep, err := Registry().Run(harness.Ctx{Config: cfg, Quick: true}, ids)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(serial, got) {
			t.Errorf("report at %d workers differs from serial run:\nserial: %s\n%d workers: %s",
				workers, serial, workers, got)
		}
	}
}
