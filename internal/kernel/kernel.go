// Package kernel models the operating-system layer the paper's experiments
// depend on: processes with private page tables, security domains (host
// user, VM guest, kernel thread), fork with copy-on-write, shared mappings,
// mprotect-induced remapping, and — crucially — the context-switch flush
// rules the paper reverse engineered: PSFP is flushed on every context
// switch, syscall and yield; both predictors are flushed when a process
// sleeps; SSBP otherwise survives across processes (Vulnerability 1).
//
// The kernel also owns the machine's hardware threads: two SMT threads per
// physical core, each with its own predictor unit (the paper found the
// predictor resources duplicated, not shared), sharing caches and memory.
package kernel

import (
	"fmt"

	"zenspec/internal/cache"
	"zenspec/internal/fault"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pipeline"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// Domain is a security domain.
type Domain uint8

// Security domains considered in Section IV-A.
const (
	DomainUser Domain = iota
	DomainVM
	DomainKernel
)

func (d Domain) String() string {
	switch d {
	case DomainUser:
		return "user"
	case DomainVM:
		return "vm"
	case DomainKernel:
		return "kernel"
	}
	return "domain?"
}

// Syscall service numbers (placed in RAX before SYSCALL).
const (
	SysYield = 1 // reschedule: flushes PSFP, keeps SSBP
	SysSleep = 2 // suspend: flushes PSFP and SSBP
)

// Config selects the kernel's mitigation posture.
type Config struct {
	// SSBD sets Speculative Store Bypass Disable on every hardware thread.
	SSBD bool
	// PSFD sets the (ineffective) Predictive Store Forwarding Disable bit.
	PSFD bool
	// FlushSSBPOnSwitch enables the Section VI-B mitigation of flushing
	// SSBP on every context switch.
	FlushSSBPOnSwitch bool
	// SaltPerDomain enables the randomized-selection mitigation: each
	// security domain hashes IPAs with its own secret salt. Note that a
	// static salt only defeats precomputed (PTEditor-style) collisions; a
	// sliding attacker with timing feedback still finds colliding offsets
	// empirically — see RotateSalt.
	SaltPerDomain bool
	// RotateSalt draws a fresh selection salt on every context switch,
	// orphaning all previously trained entries. This is the strong form of
	// the randomized-selection mitigation (at the cost of losing predictor
	// state on every switch).
	RotateSalt bool
	// TimerQuantum coarsens RDPRU (secure-timer mitigation); 0 or 1 keeps
	// cycle resolution.
	TimerQuantum int64
	// TimerJitter adds pseudo-random noise to RDPRU (the browser-timer
	// profile of Section V-C2).
	TimerJitter int64
	// Seed drives all randomized structures.
	Seed int64
	// Faults is the deterministic fault-injection plan: extra timer jitter,
	// predictor pollution and cache eviction noise between program runs. The
	// zero plan injects nothing; injections derive from (Faults.Seed, Seed)
	// only, so faulted runs stay reproducible at any parallelism.
	Faults fault.Plan
	// Pipeline overrides the core configuration (zero fields take defaults).
	Pipeline pipeline.Config
	// PredictorConfig overrides predictor sizes (zero fields take the
	// reverse-engineered defaults).
	PredictorConfig predict.Config
	// Observer, when non-nil, is subscribed to the machine's event bus at
	// boot: every structured event (instructions, squashes, forwards,
	// predictor trainings, cache fills, probes, context switches, injected
	// faults) is delivered to it. Observation is read-only — an attached
	// observer never changes simulation results.
	Observer obs.Observer
	// ObserverClasses filters the boot Observer's subscription; empty means
	// every event class.
	ObserverClasses []obs.Class
	// SMTThreads is the number of hardware threads (default 2).
	SMTThreads int
	// Parallelism bounds the worker pool of experiment trial runners; 0
	// means GOMAXPROCS. Trials are deterministic at any value (each trial
	// boots its own machine and derives its RNG from the trial index), so
	// this knob trades wall clock only, never results.
	Parallelism int
}

// CPU is one hardware (SMT) thread: a pipeline core with its private
// predictor unit.
type CPU struct {
	ID      int
	Core    *pipeline.Core
	Unit    *predict.Unit
	current *Process
	salts   map[Domain]uint64
	epoch   uint64
}

// Current returns the process last run on this thread.
func (c *CPU) Current() *Process { return c.current }

// Kernel is the machine plus operating system model.
type Kernel struct {
	cfg    Config
	phys   *mem.Physical
	caches *cache.Hierarchy
	cpus   []*CPU
	procs  []*Process
	nextID int
	inj    *fault.Injector // nil unless cfg.Faults perturbs the machine
	bus    *obs.Bus
}

// New boots a machine.
func New(cfg Config) *Kernel {
	if cfg.SMTThreads == 0 {
		cfg.SMTThreads = 2
	}
	k := &Kernel{
		cfg:    cfg,
		phys:   mem.NewPhysical(),
		caches: cache.New(cache.DefaultConfig()),
		bus:    obs.NewBus(),
	}
	k.caches.AttachBus(k.bus)
	pcfg := cfg.Pipeline
	pcfg.TimerQuantum = cfg.TimerQuantum
	// Browser-profile jitter and injected fault jitter compose: both are
	// independent noise sources on the same timer.
	pcfg.TimerJitter = cfg.TimerJitter + cfg.Faults.TimerJitter
	pcfg.TimerSeed = cfg.Seed
	if cfg.Faults.MachineActive() {
		k.inj = cfg.Faults.Injector(cfg.Seed)
		k.inj.AttachBus(k.bus)
	}
	for i := 0; i < cfg.SMTThreads; i++ {
		ucfg := cfg.PredictorConfig
		ucfg.Seed = cfg.Seed + int64(i)
		ucfg.SSBD = cfg.SSBD
		ucfg.PSFD = cfg.PSFD
		unit := predict.NewUnit(ucfg)
		unit.AttachBus(k.bus, i)
		core := pipeline.New(pcfg, k.phys, k.caches, unit, &pmc.Counters{})
		core.AttachBus(k.bus, i)
		salts := map[Domain]uint64{}
		if cfg.SaltPerDomain {
			// Deterministic per-domain secrets derived from the seed.
			for _, d := range []Domain{DomainUser, DomainVM, DomainKernel} {
				salts[d] = splitmix(uint64(cfg.Seed)*1099511628211 + uint64(d+1)*2654435761)
			}
		}
		k.cpus = append(k.cpus, &CPU{ID: i, Core: core, Unit: unit, salts: salts})
	}
	if cfg.Observer != nil {
		k.bus.Subscribe(cfg.Observer, obs.Options{Classes: cfg.ObserverClasses})
	}
	return k
}

// Bus returns the machine's event bus.
func (k *Kernel) Bus() *obs.Bus { return k.bus }

// Observe subscribes o to the machine's event bus after boot and returns a
// cancel function — the facade-level replacement for reaching into
// CPU(i).Core.SetTracer.
func (k *Kernel) Observe(o obs.Observer, opts obs.Options) (cancel func()) {
	return k.bus.Subscribe(o, opts)
}

// splitmix is a small deterministic mixer for salt generation.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Phys exposes physical memory (the harness's DMA window).
func (k *Kernel) Phys() *mem.Physical { return k.phys }

// Caches exposes the shared hierarchy.
func (k *Kernel) Caches() *cache.Hierarchy { return k.caches }

// CPU returns hardware thread i.
func (k *Kernel) CPU(i int) *CPU { return k.cpus[i] }

// NumCPUs returns the hardware thread count.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// Config returns the boot configuration.
func (k *Kernel) Config() Config { return k.cfg }

// FaultStats reports what the machine's fault injector has done so far; the
// zero Stats when no machine-level fault plan is active.
func (k *Kernel) FaultStats() fault.Stats {
	if k.inj == nil {
		return fault.Stats{}
	}
	return k.inj.Stats()
}

// SetSSBD toggles SSBD on every hardware thread at run time (the
// SPEC_CTRL write the OS performs).
func (k *Kernel) SetSSBD(on bool) {
	for _, c := range k.cpus {
		c.Unit.SetSSBD(on)
	}
}

// SetPSFD toggles the (ineffective) PSFD bit on every hardware thread.
func (k *Kernel) SetPSFD(on bool) {
	for _, c := range k.cpus {
		c.Unit.SetPSFD(on)
	}
}

// NewProcess creates a process in the given security domain.
func (k *Kernel) NewProcess(name string, d Domain) *Process {
	k.nextID++
	p := &Process{
		ID:       k.nextID,
		Name:     name,
		Domain:   d,
		AS:       mem.NewAddrSpace(),
		kernel:   k,
		nextMmap: 0x7f0000000000,
	}
	k.procs = append(k.procs, p)
	return p
}

// emitFlush reports a predictor flush on the bus; call before flushing so the
// live entry count is still observable.
func (k *Kernel) emitFlush(cpu *CPU, predictor string, entries int, cause string) {
	if entries > 0 && k.bus.On(obs.ClassPredict) {
		k.bus.Emit(obs.PredictorFlushEvent{
			CPU: cpu.ID, Cycle: k.bus.Now(),
			Predictor: predictor, Entries: entries, Cause: cause,
		})
	}
}

// switchTo performs the context-switch bookkeeping before p runs on cpu.
func (k *Kernel) switchTo(cpu *CPU, p *Process) {
	if cpu.current == p {
		return
	}
	// The hardware flushes PSFP on every context switch; SSBP survives —
	// that asymmetry is Vulnerability 1.
	k.emitFlush(cpu, "psfp", cpu.Unit.PSFP().Len(), "context-switch")
	cpu.Unit.FlushPSFP()
	if k.cfg.FlushSSBPOnSwitch {
		k.emitFlush(cpu, "ssbp", cpu.Unit.SSBP().Len(), "mitigation")
		cpu.Unit.FlushSSBP()
	}
	cpu.Core.FlushTLBs()
	if k.cfg.RotateSalt {
		cpu.epoch++
		cpu.Unit.SetSelectionSalt(splitmix(uint64(k.cfg.Seed)*977 + cpu.epoch))
	} else if k.cfg.SaltPerDomain {
		cpu.Unit.SetSelectionSalt(cpu.salts[p.Domain])
	}
	if k.bus.On(obs.ClassKernel) {
		ev := obs.ContextSwitchEvent{
			CPU: cpu.ID, Cycle: k.bus.Now(),
			ToPID: p.ID, ToName: p.Name, ToDomain: p.Domain.String(),
			PSFPFlushed: true,
			SSBPFlushed: k.cfg.FlushSSBPOnSwitch,
			SaltRotated: k.cfg.RotateSalt,
		}
		if from := cpu.current; from != nil {
			ev.FromPID, ev.FromName, ev.FromDomain = from.ID, from.Name, from.Domain.String()
		}
		k.bus.Emit(ev)
	}
	cpu.current = p
}

// RunOn runs process p on hardware thread cpu from entry until it halts,
// faults or exceeds maxInsts. Syscalls are serviced in the loop: every
// syscall flushes PSFP (the paper observed the flush on syscalls and
// yields); SysSleep additionally flushes SSBP.
func (k *Kernel) RunOn(cpuIdx int, p *Process, entry uint64, maxInsts uint64) pipeline.RunResult {
	cpu := k.cpus[cpuIdx]
	if k.inj != nil {
		// Run-boundary faults: between program runs is where co-resident
		// activity strikes on hardware (the run itself stays atomic, as a
		// single quantum does).
		defer k.inj.RunBoundary(fault.Targets{
			PSFP:  cpu.Unit.PSFP(),
			SSBP:  cpu.Unit.SSBP(),
			Cache: k.caches,
		})
	}
	k.switchTo(cpu, p)
	var all []pipeline.StldEvent
	var insts uint64
	for {
		res := cpu.Core.Run(p, entry, &p.Regs, maxInsts)
		all = append(all, res.Stlds...)
		insts += res.Insts
		switch res.Stop {
		case pipeline.StopSyscall:
			k.emitFlush(cpu, "psfp", cpu.Unit.PSFP().Len(), "syscall")
			cpu.Unit.FlushPSFP()
			switch p.Regs[isa.RAX] {
			case SysSleep:
				k.emitFlush(cpu, "ssbp", cpu.Unit.SSBP().Len(), "sleep")
				cpu.Unit.FlushAll()
			case SysYield:
				// PSFP flush already done; the scheduler picks us again.
			}
			entry = res.EndPC
		case pipeline.StopFault:
			// Transparent copy-on-write handling: a write fault on a COW
			// page copies the frame and retries the instruction.
			if pte, ok := p.AS.Lookup(res.FaultVA); ok && pte.COW && pte.Perm&mem.PermW != 0 {
				if err := p.BreakCOW(res.FaultVA); err == nil {
					entry = res.FaultPC
					continue
				}
			}
			res.Stlds = all
			res.Insts = insts
			return res
		default:
			res.Stlds = all
			res.Insts = insts
			return res
		}
	}
}

// Run runs p on hardware thread 0.
func (k *Kernel) Run(p *Process, entry uint64, maxInsts uint64) pipeline.RunResult {
	return k.RunOn(0, p, entry, maxInsts)
}

func (k *Kernel) String() string {
	return fmt.Sprintf("kernel{cpus=%d procs=%d}", len(k.cpus), len(k.procs))
}
