package kernel

import (
	"fmt"

	"zenspec/internal/pipeline"
)

// TaskState is a scheduled task's lifecycle state.
type TaskState uint8

// Task states.
const (
	TaskRunnable TaskState = iota
	TaskDone
	TaskFaulted
)

func (s TaskState) String() string {
	switch s {
	case TaskRunnable:
		return "runnable"
	case TaskDone:
		return "done"
	case TaskFaulted:
		return "faulted"
	}
	return "state?"
}

// Task is one schedulable program: a process plus a resume point.
type Task struct {
	Proc  *Process
	State TaskState
	// PC is the resume point (entry at spawn, then wherever the last
	// timeslice ended).
	PC uint64
	// Insts accumulates retired instructions across slices.
	Insts uint64
	// Slices counts timeslices consumed.
	Slices int
	// Result holds the final run result once the task is done or faulted.
	Result pipeline.RunResult
}

// Scheduler runs tasks round-robin on one hardware thread with an
// instruction-count timeslice. Every slice boundary is a context switch,
// with the full flush semantics (PSFP lost, SSBP kept) — the preemption that
// real measurements implicitly contain and that the Fig 11 victim relies on.
type Scheduler struct {
	k       *Kernel
	cpu     int
	quantum uint64
	tasks   []*Task
}

// NewScheduler creates a scheduler on hardware thread cpu with the given
// timeslice in retired instructions (0 means 1000).
func (k *Kernel) NewScheduler(cpu int, quantum uint64) *Scheduler {
	if quantum == 0 {
		quantum = 1000
	}
	return &Scheduler{k: k, cpu: cpu, quantum: quantum}
}

// Spawn queues a program.
func (s *Scheduler) Spawn(p *Process, entry uint64) *Task {
	t := &Task{Proc: p, PC: entry}
	s.tasks = append(s.tasks, t)
	return t
}

// Tasks returns the scheduled tasks.
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Runnable reports whether any task still wants CPU.
func (s *Scheduler) Runnable() bool {
	for _, t := range s.tasks {
		if t.State == TaskRunnable {
			return true
		}
	}
	return false
}

// Step gives every runnable task one timeslice, in order. It returns the
// number of tasks that ran.
func (s *Scheduler) Step() int {
	ran := 0
	for _, t := range s.tasks {
		if t.State != TaskRunnable {
			continue
		}
		ran++
		t.Slices++
		res := s.k.RunOn(s.cpu, t.Proc, t.PC, s.quantum)
		t.Insts += res.Insts
		switch res.Stop {
		case pipeline.StopInstLimit:
			t.PC = res.EndPC // preempted; resume here next slice
		case pipeline.StopHalt:
			t.State = TaskDone
			t.Result = res
		default:
			t.State = TaskFaulted
			t.Result = res
		}
	}
	return ran
}

// Run steps until every task is done or maxSlices rounds elapse. It returns
// an error when the budget runs out with work remaining.
func (s *Scheduler) Run(maxSlices int) error {
	for round := 0; round < maxSlices; round++ {
		if s.Step() == 0 {
			return nil
		}
	}
	if s.Runnable() {
		return fmt.Errorf("kernel: scheduler budget exhausted with runnable tasks")
	}
	return nil
}
