package kernel

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
	"zenspec/internal/predict"
)

const codeBase = 0x400000
const dataBase = 0x10000

// trainStld trains a process's stld pair to a recognizable predictor state:
// (7n,a)x3 leaves C3=15, C4=3 in SSBP and C0=4, C1=16, C2=2 in PSFP.
func trainStld(t *testing.T, k *Kernel, cpu int, p *Process, entry uint64) {
	t.Helper()
	runStld(t, k, cpu, p, entry, false, 7)
	runStld(t, k, cpu, p, entry, true, 1)
	runStld(t, k, cpu, p, entry, false, 7)
	runStld(t, k, cpu, p, entry, true, 1)
	runStld(t, k, cpu, p, entry, false, 7)
	runStld(t, k, cpu, p, entry, true, 1)
}

func runStld(t *testing.T, k *Kernel, cpu int, p *Process, entry uint64, aliasing bool, times int) []pipeline.StldEvent {
	t.Helper()
	var events []pipeline.StldEvent
	for i := 0; i < times; i++ {
		p.Regs = [isa.NumRegs]uint64{}
		p.Regs[isa.RDI] = dataBase
		p.Regs[isa.RSI] = dataBase
		if !aliasing {
			p.Regs[isa.RSI] = dataBase + 0x800
		}
		p.Regs[isa.R9] = 1
		res := k.RunOn(cpu, p, entry, 0)
		if res.Stop != pipeline.StopHalt {
			t.Fatalf("stld stopped with %v (fault %v at %#x)", res.Stop, res.Fault, res.FaultVA)
		}
		events = append(events, res.Stlds...)
	}
	return events
}

func setupStldProc(t *testing.T, k *Kernel, name string, d Domain) (*Process, asm.Stld) {
	t.Helper()
	p := k.NewProcess(name, d)
	s := asm.BuildStld(asm.StldOptions{})
	p.MapCode(codeBase, s.Code)
	p.MapData(dataBase, 2*mem.PageSize)
	p.WarmLine(dataBase)
	p.WarmLine(dataBase + 0x800)
	return p, s
}

func stldQuery(p *Process, s asm.Stld, base uint64) predict.Query {
	storeIPA, err := p.IPA(base + uint64(s.StoreOff))
	if err != nil {
		panic(err)
	}
	loadIPA, err := p.IPA(base + uint64(s.LoadOff))
	if err != nil {
		panic(err)
	}
	return predict.Query{StoreIPA: storeIPA, LoadIPA: loadIPA}
}

func TestProcessRunsProgram(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("demo", DomainUser)
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 21).Addi(isa.RAX, isa.RAX, 21).Halt()
	p.MapCode(codeBase, b.MustAssemble(codeBase))
	res := k.Run(p, codeBase, 0)
	if res.Stop != pipeline.StopHalt || p.Regs[isa.RAX] != 42 {
		t.Fatalf("stop %v rax %d", res.Stop, p.Regs[isa.RAX])
	}
}

// TestContextSwitchFlushesPSFPOnly is the core of Vulnerability 1: running
// another process flushes PSFP but leaves SSBP intact.
func TestContextSwitchFlushesPSFPOnly(t *testing.T) {
	k := New(Config{Seed: 1})
	victim, s := setupStldProc(t, k, "victim", DomainUser)
	trainStld(t, k, 0, victim, codeBase)
	q := stldQuery(victim, s, codeBase)
	c := k.CPU(0).Unit.PeekCounters(q)
	if c.C0 == 0 || c.C3 != 15 {
		t.Fatalf("training failed: %+v", c)
	}
	// Switch to another process.
	other := k.NewProcess("other", DomainUser)
	b := asm.NewBuilder()
	b.Nop().Halt()
	other.MapCode(codeBase, b.MustAssemble(codeBase))
	k.Run(other, codeBase, 0)
	c = k.CPU(0).Unit.PeekCounters(q)
	if c.C0 != 0 || c.C1 != 0 || c.C2 != 0 {
		t.Errorf("PSFP survived context switch: %+v", c)
	}
	if c.C3 != 15 || c.C4 != 3 {
		t.Errorf("SSBP should survive context switch: %+v", c)
	}
}

// TestSyscallFlushesPSFP: a syscall flushes PSFP mid-process.
func TestSyscallFlushesPSFP(t *testing.T) {
	k := New(Config{Seed: 1})
	victim, s := setupStldProc(t, k, "victim", DomainUser)
	trainStld(t, k, 0, victim, codeBase)
	q := stldQuery(victim, s, codeBase)
	// Program: yield syscall then halt.
	b := asm.NewBuilder()
	b.Movi(isa.RAX, SysYield).Syscall().Halt()
	victim.MapCode(codeBase+0x10000, b.MustAssemble(codeBase+0x10000))
	k.Run(victim, codeBase+0x10000, 0)
	c := k.CPU(0).Unit.PeekCounters(q)
	if c.C0 != 0 {
		t.Errorf("PSFP survived syscall: %+v", c)
	}
	if c.C3 != 15 {
		t.Errorf("SSBP should survive syscall: %+v", c)
	}
}

// TestSleepFlushesBoth: SysSleep flushes PSFP and SSBP.
func TestSleepFlushesBoth(t *testing.T) {
	k := New(Config{Seed: 1})
	victim, s := setupStldProc(t, k, "victim", DomainUser)
	trainStld(t, k, 0, victim, codeBase)
	q := stldQuery(victim, s, codeBase)
	b := asm.NewBuilder()
	b.Movi(isa.RAX, SysSleep).Syscall().Halt()
	victim.MapCode(codeBase+0x10000, b.MustAssemble(codeBase+0x10000))
	k.Run(victim, codeBase+0x10000, 0)
	if c := k.CPU(0).Unit.PeekCounters(q); !c.Zero() {
		t.Errorf("sleep did not flush everything: %+v", c)
	}
}

// TestSMTPartitioning: predictors are per hardware thread; training on
// thread 0 is invisible on thread 1.
func TestSMTPartitioning(t *testing.T) {
	k := New(Config{Seed: 1})
	victim, s := setupStldProc(t, k, "victim", DomainUser)
	trainStld(t, k, 0, victim, codeBase)
	q := stldQuery(victim, s, codeBase)
	if c := k.CPU(0).Unit.PeekCounters(q); c.C3 != 15 {
		t.Fatalf("training failed: %+v", c)
	}
	if c := k.CPU(1).Unit.PeekCounters(q); !c.Zero() {
		t.Errorf("SMT sibling sees the other thread's predictors: %+v", c)
	}
	// And running on thread 1 behaves as untrained (first aliasing is a G).
	ev := runStld(t, k, 1, victim, codeBase, true, 1)
	if len(ev) != 1 || ev[0].Type != predict.TypeG {
		t.Errorf("thread 1 should be untrained: %v", ev)
	}
}

// TestForkSharesIPAThenBreaksCOW reproduces the Section III-C1 chain of
// experiments: after fork, parent and child stld share the same IPA (same
// predictor entry); after a COW break, the child's IPA changes.
func TestForkSharesIPAThenBreaksCOW(t *testing.T) {
	k := New(Config{Seed: 1})
	parent, s := setupStldProc(t, k, "parent", DomainUser)
	child := parent.Fork("child")

	pIPA, err := parent.IPA(codeBase + uint64(s.LoadOff))
	if err != nil {
		t.Fatal(err)
	}
	cIPA, err := child.IPA(codeBase + uint64(s.LoadOff))
	if err != nil {
		t.Fatal(err)
	}
	if pIPA != cIPA {
		t.Fatalf("after fork IPAs differ: %#x vs %#x", pIPA, cIPA)
	}

	// Child runs fine on the shared COW page.
	ev := runStld(t, k, 0, child, codeBase, true, 1)
	if len(ev) != 1 {
		t.Fatalf("child stld produced %d events", len(ev))
	}

	// mprotect + dummy write: the kernel remaps the page.
	if err := child.BreakCOW(codeBase + uint64(s.LoadOff)); err != nil {
		t.Fatal(err)
	}
	cIPA2, err := child.IPA(codeBase + uint64(s.LoadOff))
	if err != nil {
		t.Fatal(err)
	}
	if cIPA2 == pIPA {
		t.Fatal("BreakCOW did not remap the page")
	}
	// Content is preserved.
	got := child.ReadBytes(codeBase+uint64(s.LoadOff), 8)
	want := parent.ReadBytes(codeBase+uint64(s.LoadOff), 8)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("COW copy corrupted the code")
		}
	}
}

// TestMmapSharedGivesSameIPA: two processes mapping the same frames have the
// same IPA at different IVAs.
func TestMmapSharedGivesSameIPA(t *testing.T) {
	k := New(Config{Seed: 1})
	a, s := setupStldProc(t, k, "a", DomainUser)
	b := k.NewProcess("b", DomainUser)
	const otherVA = 0x7000000
	if err := b.MmapShared(otherVA, a, codeBase, uint64(len(s.Code)), mem.PermR|mem.PermX); err != nil {
		t.Fatal(err)
	}
	ipaA, _ := a.IPA(codeBase + uint64(s.LoadOff))
	ipaB, _ := b.IPA(otherVA + uint64(s.LoadOff))
	if ipaA != ipaB {
		t.Fatalf("shared mapping IPAs differ: %#x vs %#x", ipaA, ipaB)
	}
}

// TestFlushSSBPOnSwitchMitigation: with the mitigation on, SSBP does not
// survive a context switch.
func TestFlushSSBPOnSwitchMitigation(t *testing.T) {
	k := New(Config{Seed: 1, FlushSSBPOnSwitch: true})
	victim, s := setupStldProc(t, k, "victim", DomainUser)
	trainStld(t, k, 0, victim, codeBase)
	q := stldQuery(victim, s, codeBase)
	other := k.NewProcess("other", DomainUser)
	bb := asm.NewBuilder()
	bb.Nop().Halt()
	other.MapCode(codeBase, bb.MustAssemble(codeBase))
	k.Run(other, codeBase, 0)
	if c := k.CPU(0).Unit.PeekCounters(q); c.C3 != 0 {
		t.Errorf("mitigation did not flush SSBP: %+v", c)
	}
}

// TestSaltPerDomainChangesSelection: with randomized selection, the same IPA
// selects different entries in different domains.
func TestSaltPerDomainChangesSelection(t *testing.T) {
	k := New(Config{Seed: 7, SaltPerDomain: true})
	user := k.NewProcess("u", DomainUser)
	vm := k.NewProcess("v", DomainVM)
	b := asm.NewBuilder()
	b.Nop().Halt()
	user.MapCode(codeBase, b.MustAssemble(codeBase))
	vm.MapCode(codeBase, b.MustAssemble(codeBase))
	k.Run(user, codeBase, 0)
	h1 := k.CPU(0).Unit.HashIPA(0x12345)
	k.Run(vm, codeBase, 0)
	h2 := k.CPU(0).Unit.HashIPA(0x12345)
	if h1 == h2 {
		t.Error("per-domain salt did not change selection")
	}
}

// TestSSBDAppliesToAllThreads: the kernel SPEC_CTRL write reaches both SMT
// threads.
func TestSSBDAppliesToAllThreads(t *testing.T) {
	k := New(Config{Seed: 1})
	k.SetSSBD(true)
	for i := 0; i < k.NumCPUs(); i++ {
		if !k.CPU(i).Unit.SSBD() {
			t.Errorf("cpu %d missing SSBD", i)
		}
	}
	k.SetSSBD(false)
	k.SetPSFD(true)
	for i := 0; i < k.NumCPUs(); i++ {
		if k.CPU(i).Unit.SSBD() || !k.CPU(i).Unit.PSFD() {
			t.Errorf("cpu %d flags wrong", i)
		}
	}
}

func TestProcessMemoryHelpers(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("m", DomainUser)
	p.MapData(dataBase, 2*mem.PageSize)
	p.Write64(dataBase+mem.PageSize-4, 0xdeadbeefcafe) // crosses a page
	if got := p.Read64(dataBase + mem.PageSize - 4); got != 0xdeadbeefcafe {
		t.Errorf("cross-page rw: %#x", got)
	}
	va := p.Mmap(3*mem.PageSize, mem.PermRW)
	p.Write64(va, 1)
	va2 := p.Mmap(mem.PageSize, mem.PermRW)
	if va2 <= va {
		t.Error("mmap regions overlap")
	}
	p.WarmLine(dataBase)
	pa, _ := p.AS.Translate(dataBase, mem.AccessRead)
	if !k.Caches().Cached(pa) {
		t.Error("WarmLine failed")
	}
	p.FlushLine(dataBase)
	if k.Caches().Cached(pa) {
		t.Error("FlushLine failed")
	}
}

func TestDomainString(t *testing.T) {
	if DomainUser.String() != "user" || DomainVM.String() != "vm" || DomainKernel.String() != "kernel" {
		t.Error("domain names")
	}
}

func TestMapCodeFramesControlsIPA(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("x", DomainUser)
	s := asm.BuildStld(asm.StldOptions{})
	pfn := uint64(0x1234)
	if err := p.MapCodeFrames(codeBase, s.Code, []uint64{pfn}); err != nil {
		t.Fatal(err)
	}
	ipa, err := p.IPA(codeBase + uint64(s.LoadOff))
	if err != nil {
		t.Fatal(err)
	}
	want := pfn<<mem.PageShift | uint64(s.LoadOff)
	if ipa != want {
		t.Errorf("IPA %#x, want %#x", ipa, want)
	}
}
