package kernel

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
)

// TestRunAccountsInstructionsAcrossSyscalls: RunOn aggregates instruction
// counts and stld events over syscall resumptions.
func TestRunAccountsInstructionsAcrossSyscalls(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("acct", DomainUser)
	b := asm.NewBuilder()
	b.Movi(isa.RAX, SysYield) // 1
	b.Syscall()               // 2
	b.Movi(isa.RAX, SysYield) // 3
	b.Syscall()               // 4
	b.Movi(isa.RAX, 7)        // 5
	b.Halt()                  // 6
	p.MapCode(codeBase, b.MustAssemble(codeBase))
	res := k.Run(p, codeBase, 0)
	if res.Stop != pipeline.StopHalt {
		t.Fatalf("stop %v", res.Stop)
	}
	if res.Insts != 6 {
		t.Errorf("insts = %d, want 6", res.Insts)
	}
	if p.Regs[isa.RAX] != 7 {
		t.Errorf("rax = %d", p.Regs[isa.RAX])
	}
}

// TestCOWFaultRetryPreservesSemantics: a store to a COW page transparently
// copies the frame, retries, and the parent's copy is untouched.
func TestCOWFaultRetryPreservesSemantics(t *testing.T) {
	k := New(Config{Seed: 1})
	parent := k.NewProcess("parent", DomainUser)
	parent.MapData(dataBase, mem.PageSize)
	parent.Write64(dataBase, 0x1111)
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 0x2222)
	b.Store(isa.RDI, 0, isa.RAX)
	b.Load(isa.RBX, isa.RDI, 0)
	b.Halt()
	parent.MapCode(codeBase, b.MustAssemble(codeBase))
	child := parent.Fork("child")
	// The child shares the code page COW; executing it is fine.
	child.Regs[isa.RDI] = dataBase
	res := k.Run(child, codeBase, 0)
	if res.Stop != pipeline.StopHalt {
		t.Fatalf("stop %v (fault %v at %#x)", res.Stop, res.Fault, res.FaultVA)
	}
	if child.Regs[isa.RBX] != 0x2222 {
		t.Errorf("child read back %#x", child.Regs[isa.RBX])
	}
	if child.Read64(dataBase) != 0x2222 {
		t.Error("child write lost")
	}
	if parent.Read64(dataBase) != 0x1111 {
		t.Error("child write leaked into the parent (COW broken)")
	}
}

// TestVMDomainProcessesRun: processes in the VM and kernel domains execute
// like user processes (domains only matter to isolation bookkeeping).
func TestVMDomainProcessesRun(t *testing.T) {
	k := New(Config{Seed: 1})
	for _, d := range []Domain{DomainVM, DomainKernel} {
		p := k.NewProcess("d", d)
		b := asm.NewBuilder()
		b.Movi(isa.RAX, int32(10+int(d))).Halt()
		p.MapCode(codeBase, b.MustAssemble(codeBase))
		if res := k.Run(p, codeBase, 0); res.Stop != pipeline.StopHalt {
			t.Errorf("%v: stop %v", d, res.Stop)
		}
		if p.Regs[isa.RAX] != uint64(10+int(d)) {
			t.Errorf("%v: rax %d", d, p.Regs[isa.RAX])
		}
	}
}

// TestRotateSaltChangesSelectionEverySwitch: each context switch re-salts
// the hash, so the same IPA maps to a different entry each epoch.
func TestRotateSaltChangesSelectionEverySwitch(t *testing.T) {
	k := New(Config{Seed: 9, RotateSalt: true})
	a := k.NewProcess("a", DomainUser)
	bp := k.NewProcess("b", DomainUser)
	prog := asm.NewBuilder()
	prog.Nop().Halt()
	a.MapCode(codeBase, prog.MustAssemble(codeBase))
	bp.MapCode(codeBase, prog.MustAssemble(codeBase))
	var hashes []uint16
	for i := 0; i < 4; i++ {
		k.Run(a, codeBase, 0)
		hashes = append(hashes, k.CPU(0).Unit.HashIPA(0x123456))
		k.Run(bp, codeBase, 0)
		hashes = append(hashes, k.CPU(0).Unit.HashIPA(0x123456))
	}
	distinct := map[uint16]bool{}
	for _, h := range hashes {
		distinct[h] = true
	}
	if len(distinct) < 3 {
		t.Errorf("rotating salt produced only %d distinct selections over %d switches", len(distinct), len(hashes))
	}
}

// TestMmapSharedDataVisibility: shared mappings see each other's writes.
func TestMmapSharedDataVisibility(t *testing.T) {
	k := New(Config{Seed: 1})
	a := k.NewProcess("a", DomainUser)
	b := k.NewProcess("b", DomainUser)
	a.MapData(dataBase, mem.PageSize)
	if err := b.MmapShared(0x9000000, a, dataBase, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a.Write64(dataBase+8, 0xfeed)
	if got := b.Read64(0x9000000 + 8); got != 0xfeed {
		t.Errorf("shared read %#x", got)
	}
	b.Write64(0x9000000+16, 0xbeef)
	if got := a.Read64(dataBase + 16); got != 0xbeef {
		t.Errorf("reverse shared read %#x", got)
	}
}

// TestMmapSharedUnmappedSource: sharing an unmapped range errors.
func TestMmapSharedUnmappedSource(t *testing.T) {
	k := New(Config{Seed: 1})
	a := k.NewProcess("a", DomainUser)
	b := k.NewProcess("b", DomainUser)
	if err := b.MmapShared(0x9000000, a, 0x5555000, mem.PageSize, mem.PermR); err == nil {
		t.Error("sharing unmapped pages should fail")
	}
}

// TestBreakCOWNonCOWIsNoop: breaking COW on a private page does nothing.
func TestBreakCOWNonCOWIsNoop(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("p", DomainUser)
	p.MapData(dataBase, mem.PageSize)
	before, _ := p.IPA(dataBase)
	if err := p.BreakCOW(dataBase); err != nil {
		t.Fatal(err)
	}
	after, _ := p.IPA(dataBase)
	if before != after {
		t.Error("non-COW page was remapped")
	}
	if err := p.BreakCOW(0xdead0000); err == nil {
		t.Error("breaking COW on an unmapped page should fail")
	}
}

// TestMapCodeFramesErrors: too few frames or a reserved frame fail cleanly.
func TestMapCodeFramesErrors(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("p", DomainUser)
	code := make([]byte, 2*mem.PageSize)
	if err := p.MapCodeFrames(codeBase, code, []uint64{0x100}); err == nil {
		t.Error("insufficient frames should fail")
	}
	if err := p.MapCodeFrames(codeBase, code, []uint64{0, 1}); err == nil {
		t.Error("reserved frame 0 should fail")
	}
}

// TestKernelStrings covers the diagnostics.
func TestKernelStrings(t *testing.T) {
	k := New(Config{Seed: 1})
	if k.String() == "" {
		t.Error("kernel String")
	}
	p := k.NewProcess("x", DomainUser)
	if p.String() == "" {
		t.Error("process String")
	}
	if k.Config().SMTThreads != 2 {
		t.Error("default SMT threads")
	}
	if k.CPU(0).Current() != nil {
		t.Error("fresh CPU should have no current process")
	}
}
