package kernel

import (
	"fmt"

	"zenspec/internal/isa"
	"zenspec/internal/mem"
)

// Process is a schedulable context with a private address space.
type Process struct {
	ID     int
	Name   string
	Domain Domain
	AS     *mem.AddrSpace
	Regs   [isa.NumRegs]uint64

	kernel   *Kernel
	nextMmap uint64
}

// Translate implements pipeline.MMU.
func (p *Process) Translate(va uint64, acc mem.Access) (uint64, mem.Fault) {
	return p.AS.Translate(va, acc)
}

// TranslationEpoch exposes the address space's remap counter, letting the
// pipeline's fetch cache validate cached translations in O(1).
func (p *Process) TranslationEpoch() uint64 { return p.AS.TranslationEpoch() }

// MapCode maps code at va (read+exec) on freshly allocated frames.
func (p *Process) MapCode(va uint64, code []byte) {
	p.mapRange(va, uint64(len(code)), mem.PermR|mem.PermX, nil)
	p.WriteBytes(va, code)
}

// MapCodeFrames maps code at va onto the given physical frames (one per
// page) — the PTEditor-grade control the reverse-engineering harness uses to
// construct instruction physical addresses with chosen hash values.
func (p *Process) MapCodeFrames(va uint64, code []byte, pfns []uint64) error {
	pages := int((uint64(len(code)) + mem.PageSize - 1) / mem.PageSize)
	if pages > len(pfns) {
		return fmt.Errorf("kernel: need %d frames, got %d", pages, len(pfns))
	}
	for i := 0; i < pages; i++ {
		if !p.kernel.phys.Allocated(pfns[i]) {
			if err := p.kernel.phys.AllocFrameAt(pfns[i]); err != nil {
				return err
			}
		}
		p.AS.Map(va+uint64(i)*mem.PageSize, pfns[i], mem.PermR|mem.PermX)
	}
	p.WriteBytes(va, code)
	return nil
}

// MapData maps size bytes of read-write data at va.
func (p *Process) MapData(va, size uint64) {
	p.mapRange(va, size, mem.PermRW, nil)
}

// MapDataFrames maps data pages onto chosen frames.
func (p *Process) MapDataFrames(va, size uint64, pfns []uint64) error {
	pages := int((size + mem.PageSize - 1) / mem.PageSize)
	if pages > len(pfns) {
		return fmt.Errorf("kernel: need %d frames, got %d", pages, len(pfns))
	}
	for i := 0; i < pages; i++ {
		if !p.kernel.phys.Allocated(pfns[i]) {
			if err := p.kernel.phys.AllocFrameAt(pfns[i]); err != nil {
				return err
			}
		}
		p.AS.Map(va+uint64(i)*mem.PageSize, pfns[i], mem.PermRW)
	}
	return nil
}

func (p *Process) mapRange(va, size uint64, perm mem.Perm, pfns []uint64) {
	end := va + size
	for a := va &^ uint64(mem.PageMask); a < end; a += mem.PageSize {
		if _, ok := p.AS.Lookup(a); !ok {
			p.AS.Map(a, p.kernel.phys.AllocFrame(), perm)
		}
	}
}

// Mmap allocates a fresh anonymous mapping and returns its address.
func (p *Process) Mmap(size uint64, perm mem.Perm) uint64 {
	va := p.nextMmap
	pages := (size + mem.PageSize - 1) / mem.PageSize
	for i := uint64(0); i < pages; i++ {
		p.AS.Map(va+i*mem.PageSize, p.kernel.phys.AllocFrame(), perm)
	}
	p.nextMmap += (pages + 1) * mem.PageSize
	return va
}

// MmapShared maps the physical frames backing other's [otherVA, otherVA+size)
// into p at va — the shared-memory setup of the in-place cross-domain
// experiments (same IPA, possibly different IVA).
func (p *Process) MmapShared(va uint64, other *Process, otherVA, size uint64, perm mem.Perm) error {
	pages := (size + mem.PageSize - 1) / mem.PageSize
	for i := uint64(0); i < pages; i++ {
		pte, ok := other.AS.Lookup(otherVA + i*mem.PageSize)
		if !ok {
			return fmt.Errorf("kernel: source page %#x not mapped", otherVA+i*mem.PageSize)
		}
		p.AS.Map(va+i*mem.PageSize, pte.PFN, perm)
	}
	return nil
}

// Fork creates a child process sharing all frames copy-on-write, the
// Section III-C1 experiment: parent and child stld share IVAs and IPAs
// until the child writes.
func (p *Process) Fork(name string) *Process {
	child := p.kernel.NewProcess(name, p.Domain)
	child.Regs = p.Regs
	child.nextMmap = p.nextMmap
	p.AS.Each(func(vpn uint64, pte mem.PTE) {
		child.AS.MapCOW(vpn<<mem.PageShift, pte.PFN, pte.Perm)
	})
	return child
}

// BreakCOW gives the page containing va a private copy of its frame — what
// the kernel does when a COW page is written (the paper triggers it with
// mprotect + a dummy write, observing that the stld's IPA changes while its
// IVA does not).
func (p *Process) BreakCOW(va uint64) error {
	pte, ok := p.AS.Lookup(va)
	if !ok {
		return fmt.Errorf("kernel: %#x not mapped", va)
	}
	if !pte.COW {
		return nil
	}
	newPFN := p.kernel.phys.AllocFrame()
	data := p.kernel.phys.ReadBytes(pte.PFN<<mem.PageShift, mem.PageSize)
	p.kernel.phys.WriteBytes(newPFN<<mem.PageShift, data)
	p.AS.Map(va, newPFN, pte.Perm)
	return nil
}

// IPA translates an instruction virtual address to its physical address —
// the PTEditor capability (root only in the paper's threat model).
func (p *Process) IPA(va uint64) (uint64, error) {
	pa, f := p.AS.Translate(va, mem.AccessExec)
	if f != mem.FaultNone {
		pa, f = p.AS.Translate(va, mem.AccessRead)
	}
	if f != mem.FaultNone {
		return 0, fmt.Errorf("kernel: translate %#x: %v", va, f)
	}
	return pa, nil
}

// WriteBytes writes through the page table into physical memory.
func (p *Process) WriteBytes(va uint64, b []byte) {
	for i := 0; i < len(b); {
		pa, f := p.AS.Translate(va+uint64(i), mem.AccessRead)
		if f != mem.FaultNone {
			panic(fmt.Sprintf("kernel: WriteBytes unmapped va %#x", va+uint64(i)))
		}
		chunk := int(mem.PageSize - mem.PageOffset(va+uint64(i)))
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		p.kernel.phys.WriteBytes(pa, b[i:i+chunk])
		i += chunk
	}
}

// ReadBytes reads through the page table.
func (p *Process) ReadBytes(va uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		pa, f := p.AS.Translate(va+uint64(i), mem.AccessRead)
		if f != mem.FaultNone {
			panic(fmt.Sprintf("kernel: ReadBytes unmapped va %#x", va+uint64(i)))
		}
		chunk := int(mem.PageSize - mem.PageOffset(va+uint64(i)))
		if chunk > n-i {
			chunk = n - i
		}
		copy(out[i:i+chunk], p.kernel.phys.ReadBytes(pa, chunk))
		i += chunk
	}
	return out
}

// Write64 writes an 8-byte value at va.
func (p *Process) Write64(va, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	p.WriteBytes(va, b[:])
}

// Read64 reads an 8-byte value at va.
func (p *Process) Read64(va uint64) uint64 {
	b := p.ReadBytes(va, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// FlushLine flushes va's cache line (a host-side clflush for harness setup).
func (p *Process) FlushLine(va uint64) {
	if pa, f := p.AS.Translate(va, mem.AccessRead); f == mem.FaultNone {
		p.kernel.caches.Flush(pa)
	}
}

// WarmLine fills va's cache line.
func (p *Process) WarmLine(va uint64) {
	if pa, f := p.AS.Translate(va, mem.AccessRead); f == mem.FaultNone {
		p.kernel.caches.Touch(pa)
	}
}

func (p *Process) String() string {
	return fmt.Sprintf("proc{%d %s %s}", p.ID, p.Name, p.Domain)
}
