package kernel

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
)

// counterProg builds: for rcx iterations { mem[r15] += 1 }; halt.
func counterProg(iters int32) []byte {
	b := asm.NewBuilder()
	b.Movi(isa.RCX, iters)
	b.Label("loop")
	b.Load(isa.RAX, isa.R15, 0)
	b.Addi(isa.RAX, isa.RAX, 1)
	b.Store(isa.R15, 0, isa.RAX)
	b.Subi(isa.RCX, isa.RCX, 1)
	b.Jnz(isa.RCX, "loop")
	b.Halt()
	return b.MustAssemble(codeBase)
}

func TestSchedulerInterleavesTasks(t *testing.T) {
	k := New(Config{Seed: 1})
	sched := k.NewScheduler(0, 50) // ~10 loop iterations per slice
	var tasks []*Task
	for i := 0; i < 3; i++ {
		p := k.NewProcess("task", DomainUser)
		p.MapCode(codeBase, counterProg(100))
		p.MapData(dataBase, mem.PageSize)
		p.Regs[isa.R15] = dataBase
		tasks = append(tasks, sched.Spawn(p, codeBase))
	}
	if err := sched.Run(200); err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if task.State != TaskDone {
			t.Errorf("task %d state %v", i, task.State)
		}
		if task.Slices < 2 {
			t.Errorf("task %d ran in %d slices; the quantum should preempt it", i, task.Slices)
		}
		if got := task.Proc.Read64(dataBase); got != 100 {
			t.Errorf("task %d counted to %d, want 100", i, got)
		}
		if task.Insts == 0 {
			t.Errorf("task %d has no instruction accounting", i)
		}
	}
}

func TestSchedulerPreemptionFlushesPSFP(t *testing.T) {
	k := New(Config{Seed: 1})
	// Task A trains its PSFP entry; task B is just a spin loop. With both
	// scheduled, A's PSFP state cannot survive into its next slice.
	victim, s := setupStldProc(t, k, "victim", DomainUser)
	trainStld(t, k, 0, victim, codeBase)
	q := stldQuery(victim, s, codeBase)
	if c := k.CPU(0).Unit.PeekCounters(q); c.C0 == 0 {
		t.Fatal("training failed")
	}
	other := k.NewProcess("other", DomainUser)
	other.MapCode(codeBase, counterProg(5))
	other.MapData(dataBase, mem.PageSize)
	other.Regs[isa.R15] = dataBase
	sched := k.NewScheduler(0, 100)
	sched.Spawn(other, codeBase)
	if err := sched.Run(10); err != nil {
		t.Fatal(err)
	}
	c := k.CPU(0).Unit.PeekCounters(q)
	if c.C0 != 0 {
		t.Error("PSFP survived a scheduled context switch")
	}
	if c.C3 == 0 {
		t.Error("SSBP should survive scheduling")
	}
}

func TestSchedulerFaultingTask(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("crash", DomainUser)
	b := asm.NewBuilder()
	b.Load(isa.RAX, isa.RDI, 0).Halt()
	p.MapCode(codeBase, b.MustAssemble(codeBase))
	p.Regs[isa.RDI] = 0xdead0000
	sched := k.NewScheduler(0, 100)
	task := sched.Spawn(p, codeBase)
	if err := sched.Run(5); err != nil {
		t.Fatal(err)
	}
	if task.State != TaskFaulted {
		t.Fatalf("state %v", task.State)
	}
	if task.Result.Stop != pipeline.StopFault || task.Result.FaultVA != 0xdead0000 {
		t.Errorf("result %+v", task.Result)
	}
}

func TestSchedulerBudgetExhaustion(t *testing.T) {
	k := New(Config{Seed: 1})
	p := k.NewProcess("spin", DomainUser)
	b := asm.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	p.MapCode(codeBase, b.MustAssemble(codeBase))
	sched := k.NewScheduler(0, 50)
	sched.Spawn(p, codeBase)
	if err := sched.Run(3); err == nil {
		t.Error("infinite loop should exhaust the budget")
	}
}

func TestTaskStateStrings(t *testing.T) {
	for s, want := range map[TaskState]string{TaskRunnable: "runnable", TaskDone: "done", TaskFaulted: "faulted"} {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
	if TaskState(9).String() == "" {
		t.Error("unknown state should print")
	}
	k := New(Config{Seed: 1})
	sched := k.NewScheduler(0, 0)
	if len(sched.Tasks()) != 0 || sched.Runnable() {
		t.Error("fresh scheduler state")
	}
}
