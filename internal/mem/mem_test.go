package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFrameUnique(t *testing.T) {
	p := NewPhysical()
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		pfn := p.AllocFrame()
		if pfn == 0 {
			t.Fatal("frame 0 must stay reserved")
		}
		if seen[pfn] {
			t.Fatalf("frame %#x allocated twice", pfn)
		}
		seen[pfn] = true
	}
	if p.NumFrames() != 100 {
		t.Errorf("NumFrames = %d, want 100", p.NumFrames())
	}
}

func TestAllocFrameAt(t *testing.T) {
	p := NewPhysical()
	if err := p.AllocFrameAt(0x123); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocFrameAt(0x123); err == nil {
		t.Error("double allocation should fail")
	}
	if err := p.AllocFrameAt(0); err == nil {
		t.Error("frame 0 should be unallocatable")
	}
	if err := p.AllocFrameAt(MaxFrame + 1); err == nil {
		t.Error("out-of-range frame should fail")
	}
	// AllocFrame must skip explicitly taken frames.
	if err := p.AllocFrameAt(1); err != nil {
		t.Fatal(err)
	}
	if pfn := p.AllocFrame(); pfn == 1 {
		t.Error("AllocFrame returned an already-taken frame")
	}
}

func TestReadWriteBytesCrossFrame(t *testing.T) {
	p := NewPhysical()
	pa := uint64(2*PageSize) - 3 // spans two frames
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	p.WriteBytes(pa, data)
	got := p.ReadBytes(pa, len(data))
	if !bytes.Equal(got, data) {
		t.Errorf("cross-frame read = %v, want %v", got, data)
	}
}

func TestReadUnallocatedIsZero(t *testing.T) {
	p := NewPhysical()
	got := p.ReadBytes(0x5000, 16)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("unallocated read returned %v", got)
		}
	}
	if p.Read64(0x9000) != 0 {
		t.Error("unallocated Read64 nonzero")
	}
}

func TestRead64Write64RoundTrip(t *testing.T) {
	p := NewPhysical()
	f := func(pa, v uint64) bool {
		pa &= (uint64(1) << 30) - 1 // keep the test memory small
		p.Write64(pa, v)
		return p.Read64(pa) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTranslatePermissions(t *testing.T) {
	a := NewAddrSpace()
	a.Map(0x400000, 7, PermR|PermX)
	tests := []struct {
		va   uint64
		acc  Access
		want Fault
	}{
		{0x400010, AccessRead, FaultNone},
		{0x400010, AccessExec, FaultNone},
		{0x400010, AccessWrite, FaultProtection},
		{0x500000, AccessRead, FaultNotMapped},
	}
	for _, tc := range tests {
		pa, f := a.Translate(tc.va, tc.acc)
		if f != tc.want {
			t.Errorf("Translate(%#x,%v) fault = %v, want %v", tc.va, tc.acc, f, tc.want)
		}
		if f == FaultNone {
			want := uint64(7)<<PageShift | PageOffset(tc.va)
			if pa != want {
				t.Errorf("Translate(%#x) = %#x, want %#x", tc.va, pa, want)
			}
		}
	}
}

func TestCOWTranslate(t *testing.T) {
	a := NewAddrSpace()
	a.MapCOW(0x600000, 9, PermRW)
	if _, f := a.Translate(0x600000, AccessRead); f != FaultNone {
		t.Errorf("COW read fault = %v", f)
	}
	if _, f := a.Translate(0x600000, AccessWrite); f != FaultProtection {
		t.Errorf("COW write fault = %v, want protection", f)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewAddrSpace()
	a.Map(0x1000, 1, PermRW)
	c := a.Clone()
	c.Map(0x2000, 2, PermRW)
	if a.Pages() != 1 {
		t.Error("clone mutated original")
	}
	if c.Pages() != 2 {
		t.Error("clone missing mapping")
	}
	a.Unmap(0x1000)
	if _, ok := c.Lookup(0x1000); !ok {
		t.Error("unmap in original affected clone")
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000, 1)
	tlb.Insert(0x2000, 2)
	tlb.Insert(0x3000, 3) // evicts 0x1000
	if _, ok := tlb.Lookup(0x1000); ok {
		t.Error("oldest entry should be evicted")
	}
	if pfn, ok := tlb.Lookup(0x2000); !ok || pfn != 2 {
		t.Error("0x2000 should remain")
	}
	if pfn, ok := tlb.Lookup(0x3fff); !ok || pfn != 3 {
		t.Error("lookup within page should hit")
	}
	if tlb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tlb.Len())
	}
}

func TestTLBReinsertDoesNotGrow(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000, 1)
	tlb.Insert(0x1000, 5)
	if pfn, _ := tlb.Lookup(0x1000); pfn != 5 {
		t.Error("reinsert should update pfn")
	}
	if tlb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tlb.Len())
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Error("flush should empty TLB")
	}
	// Reinsert after flush works.
	tlb.Insert(0x4000, 4)
	if _, ok := tlb.Lookup(0x4000); !ok {
		t.Error("insert after flush failed")
	}
}

func TestPermString(t *testing.T) {
	if PermRWX.String() != "rwx" || Perm(0).String() != "---" || (PermR|PermX).String() != "r-x" {
		t.Error("Perm.String wrong")
	}
}

func TestFaultString(t *testing.T) {
	for f, want := range map[Fault]string{FaultNone: "none", FaultNotMapped: "not-mapped", FaultProtection: "protection"} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestGeometryHelpers(t *testing.T) {
	f := func(raw uint64) bool {
		va := raw & ((uint64(1) << PhysBits) - 1)
		return VPN(va)<<PageShift|PageOffset(va) == va
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
