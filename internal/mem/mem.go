// Package mem models physical memory and per-process address translation.
//
// Physical memory is a sparse collection of 4 KiB frames addressed by a
// 48-bit physical address, matching the paper's "the IPA is up to 48 bits".
// Frames can be allocated at chosen frame numbers, which is how the
// experiment harness plays the role of PTEditor: it constructs instruction
// physical addresses with chosen predictor-hash values.
package mem

import "fmt"

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
	// PhysBits is the width of a physical address.
	PhysBits = 48
	// MaxFrame is the highest allocatable physical frame number.
	MaxFrame = (uint64(1) << (PhysBits - PageShift)) - 1
)

// VPN returns the virtual page number of va.
func VPN(va uint64) uint64 { return va >> PageShift }

// PFNOf returns the physical frame number of pa.
func PFNOf(pa uint64) uint64 { return pa >> PageShift }

// PageOffset returns the offset of addr within its page.
func PageOffset(addr uint64) uint64 { return addr & PageMask }

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
	// PermRW and PermRWX are common combinations.
	PermRW  = PermR | PermW
	PermRWX = PermR | PermW | PermX
)

func (p Perm) String() string {
	s := []byte("---")
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s)
}

// Fault describes the outcome of a translation.
type Fault uint8

// Translation outcomes.
const (
	FaultNone Fault = iota
	FaultNotMapped
	FaultProtection
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultNotMapped:
		return "not-mapped"
	case FaultProtection:
		return "protection"
	}
	return "fault?"
}

// Access is the kind of memory access being translated.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

// Frame is one physical page. Version counts the writes the frame has seen;
// caches keyed on frame contents (the pipeline's decoded-fetch cache) compare
// it instead of the bytes.
type Frame struct {
	Data    [PageSize]byte
	Version uint64
}

// Physical is the machine's physical memory.
type Physical struct {
	frames   map[uint64]*Frame
	nextFree uint64
}

// NewPhysical returns empty physical memory. Frame 0 is reserved (never
// allocated) so that physical address 0 is always invalid.
func NewPhysical() *Physical {
	return &Physical{frames: make(map[uint64]*Frame), nextFree: 1}
}

// AllocFrame allocates the next free frame and returns its frame number.
func (p *Physical) AllocFrame() uint64 {
	for p.frames[p.nextFree] != nil {
		p.nextFree++
	}
	pfn := p.nextFree
	p.frames[pfn] = new(Frame)
	p.nextFree++
	return pfn
}

// AllocFrameAt allocates a frame at a specific frame number, the PTEditor-
// style privilege the experiment harness uses to construct IPAs with chosen
// hash values. It reports an error if the frame is taken or out of range.
func (p *Physical) AllocFrameAt(pfn uint64) error {
	if pfn == 0 || pfn > MaxFrame {
		return fmt.Errorf("mem: frame %#x out of range", pfn)
	}
	if p.frames[pfn] != nil {
		return fmt.Errorf("mem: frame %#x already allocated", pfn)
	}
	p.frames[pfn] = new(Frame)
	return nil
}

// FreeFrame releases a frame.
func (p *Physical) FreeFrame(pfn uint64) { delete(p.frames, pfn) }

// Allocated reports whether a frame exists.
func (p *Physical) Allocated(pfn uint64) bool { return p.frames[pfn] != nil }

// NumFrames returns the number of allocated frames.
func (p *Physical) NumFrames() int { return len(p.frames) }

func (p *Physical) frame(pa uint64) *Frame {
	return p.frames[PFNOf(pa)]
}

// FrameAt returns the frame holding pa, or nil if it is unallocated. The
// pointer stays valid until the frame is freed; callers that cache derived
// state (decoded instructions) must revalidate against Frame.Version.
func (p *Physical) FrameAt(pa uint64) *Frame {
	return p.frames[PFNOf(pa)]
}

// ReadBytes copies n bytes starting at physical address pa into a new slice.
// Reads of unallocated memory return zeros, like reads of uninitialized RAM.
// Accesses may cross frame boundaries (instruction fetch at arbitrary byte
// offsets requires this).
func (p *Physical) ReadBytes(pa uint64, n int) []byte {
	out := make([]byte, n)
	p.ReadInto(pa, out)
	return out
}

// ReadInto fills out with the bytes starting at pa without allocating; the
// hot fetch path uses it with a stack buffer. Semantics match ReadBytes.
func (p *Physical) ReadInto(pa uint64, out []byte) {
	n := len(out)
	for i := 0; i < n; {
		f := p.frame(pa + uint64(i))
		off := int(PageOffset(pa + uint64(i)))
		chunk := PageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if f != nil {
			copy(out[i:i+chunk], f.Data[off:off+chunk])
		} else {
			for j := i; j < i+chunk; j++ {
				out[j] = 0
			}
		}
		i += chunk
	}
}

// WriteBytes writes b starting at physical address pa. Writes to unallocated
// frames allocate them, so the harness can treat physical memory as flat.
// Every touched frame's Version is bumped.
func (p *Physical) WriteBytes(pa uint64, b []byte) {
	for i := 0; i < len(b); {
		pfn := PFNOf(pa + uint64(i))
		f := p.frames[pfn]
		if f == nil {
			f = new(Frame)
			p.frames[pfn] = f
		}
		off := int(PageOffset(pa + uint64(i)))
		chunk := PageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(f.Data[off:off+chunk], b[i:i+chunk])
		f.Version++
		i += chunk
	}
}

// Read64 reads a little-endian 64-bit value at pa.
func (p *Physical) Read64(pa uint64) uint64 {
	if off := PageOffset(pa); off <= PageSize-8 {
		f := p.frame(pa)
		if f == nil {
			return 0
		}
		b := f.Data[off : off+8 : off+8]
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	}
	var b [8]byte
	p.ReadInto(pa, b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Write64 writes a little-endian 64-bit value at pa.
func (p *Physical) Write64(pa, v uint64) {
	if off := PageOffset(pa); off <= PageSize-8 {
		pfn := PFNOf(pa)
		f := p.frames[pfn]
		if f == nil {
			f = new(Frame)
			p.frames[pfn] = f
		}
		b := f.Data[off : off+8 : off+8]
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		b[4] = byte(v >> 32)
		b[5] = byte(v >> 40)
		b[6] = byte(v >> 48)
		b[7] = byte(v >> 56)
		f.Version++
		return
	}
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	p.WriteBytes(pa, b[:])
}

// PTE is a page-table entry.
type PTE struct {
	PFN  uint64
	Perm Perm
	// COW marks a copy-on-write mapping: it is readable/executable but a
	// write must first be given a private copy by the kernel.
	COW bool
}

// AddrSpace is a per-process page table.
type AddrSpace struct {
	pages map[uint64]PTE
	epoch uint64
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]PTE)}
}

// TranslationEpoch returns the translation epoch: a counter bumped whenever
// an existing translation changes or disappears. Caches of *successful*
// translation results (the pipeline's fetch and data-translation caches)
// compare it to detect remaps in O(1) instead of re-walking the page table.
// Mapping a previously-unmapped page does not bump it: no cached success can
// be affected, and faults are never cached.
func (a *AddrSpace) TranslationEpoch() uint64 { return a.epoch }

// Map installs a mapping from the virtual page containing va to pfn.
func (a *AddrSpace) Map(va, pfn uint64, perm Perm) {
	vpn := VPN(va)
	pte := PTE{PFN: pfn, Perm: perm}
	if old, ok := a.pages[vpn]; ok && old != pte {
		a.epoch++
	}
	a.pages[vpn] = pte
}

// MapCOW installs a copy-on-write mapping.
func (a *AddrSpace) MapCOW(va, pfn uint64, perm Perm) {
	vpn := VPN(va)
	pte := PTE{PFN: pfn, Perm: perm, COW: true}
	if old, ok := a.pages[vpn]; ok && old != pte {
		a.epoch++
	}
	a.pages[vpn] = pte
}

// Unmap removes the mapping of the page containing va.
func (a *AddrSpace) Unmap(va uint64) {
	delete(a.pages, VPN(va))
	a.epoch++
}

// Lookup returns the PTE for the page containing va.
func (a *AddrSpace) Lookup(va uint64) (PTE, bool) {
	pte, ok := a.pages[VPN(va)]
	return pte, ok
}

// Pages returns the number of mapped pages.
func (a *AddrSpace) Pages() int { return len(a.pages) }

// Each calls fn for every mapping.
func (a *AddrSpace) Each(fn func(vpn uint64, pte PTE)) {
	for vpn, pte := range a.pages {
		fn(vpn, pte)
	}
}

// Clone returns a deep copy of the address space (used by fork before COW
// marking).
func (a *AddrSpace) Clone() *AddrSpace {
	c := NewAddrSpace()
	for vpn, pte := range a.pages {
		c.pages[vpn] = pte
	}
	return c
}

// Translate translates va for the given access kind. On success it returns
// the physical address and FaultNone. A write to a COW page reports
// FaultProtection; the kernel resolves it by copying the frame.
func (a *AddrSpace) Translate(va uint64, acc Access) (uint64, Fault) {
	pte, ok := a.pages[VPN(va)]
	if !ok {
		return 0, FaultNotMapped
	}
	switch acc {
	case AccessRead:
		if pte.Perm&PermR == 0 {
			return 0, FaultProtection
		}
	case AccessWrite:
		if pte.Perm&PermW == 0 || pte.COW {
			return 0, FaultProtection
		}
	case AccessExec:
		if pte.Perm&PermX == 0 {
			return 0, FaultProtection
		}
	}
	return pte.PFN<<PageShift | PageOffset(va), FaultNone
}

// TLB is a small fully-associative translation cache with FIFO replacement.
// It exists for timing and the PMC instruction-TLB events; translations are
// always verified against the page table by the caller on miss.
//
// A one-entry memo in front of the map serves the common case — consecutive
// instruction fetches and repeated data touches within one page — without a
// map access. The memo is a pure cache of map content: hit/miss results and
// FIFO eviction order are identical with or without it.
type TLB struct {
	size int
	// order is a fixed ring of vpns in insertion order: head indexes the
	// oldest entry, n counts live ones. A ring instead of a sliding slice
	// keeps steady-state eviction allocation-free — the probe-sweep hot
	// loop evicts on every insert.
	order   []uint64
	head    int
	n       int
	entries map[uint64]uint64

	lastVPN uint64
	lastPFN uint64
	lastOK  bool
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(size int) *TLB {
	return &TLB{size: size, order: make([]uint64, size), entries: make(map[uint64]uint64, size)}
}

// Lookup returns the cached pfn for va's page.
func (t *TLB) Lookup(va uint64) (uint64, bool) {
	vpn := VPN(va)
	if t.lastOK && vpn == t.lastVPN {
		return t.lastPFN, true
	}
	pfn, ok := t.entries[vpn]
	if ok {
		t.lastVPN, t.lastPFN, t.lastOK = vpn, pfn, true
	}
	return pfn, ok
}

// Insert caches a translation.
func (t *TLB) Insert(va, pfn uint64) {
	vpn := VPN(va)
	if _, ok := t.entries[vpn]; ok {
		t.entries[vpn] = pfn
		if t.lastOK && t.lastVPN == vpn {
			t.lastPFN = pfn
		}
		return
	}
	if t.n >= t.size {
		oldest := t.order[t.head]
		delete(t.entries, oldest)
		if t.lastOK && t.lastVPN == oldest {
			t.lastOK = false
		}
		t.order[t.head] = vpn
		t.head++
		if t.head == t.size {
			t.head = 0
		}
	} else {
		i := t.head + t.n
		if i >= t.size {
			i -= t.size
		}
		t.order[i] = vpn
		t.n++
	}
	t.entries[vpn] = pfn
	t.lastVPN, t.lastPFN, t.lastOK = vpn, pfn, true
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	t.head, t.n = 0, 0
	clear(t.entries)
	t.lastOK = false
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }
