// Package mem models physical memory and per-process address translation.
//
// Physical memory is a sparse collection of 4 KiB frames addressed by a
// 48-bit physical address, matching the paper's "the IPA is up to 48 bits".
// Frames can be allocated at chosen frame numbers, which is how the
// experiment harness plays the role of PTEditor: it constructs instruction
// physical addresses with chosen predictor-hash values.
package mem

import "fmt"

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
	// PhysBits is the width of a physical address.
	PhysBits = 48
	// MaxFrame is the highest allocatable physical frame number.
	MaxFrame = (uint64(1) << (PhysBits - PageShift)) - 1
)

// VPN returns the virtual page number of va.
func VPN(va uint64) uint64 { return va >> PageShift }

// PFNOf returns the physical frame number of pa.
func PFNOf(pa uint64) uint64 { return pa >> PageShift }

// PageOffset returns the offset of addr within its page.
func PageOffset(addr uint64) uint64 { return addr & PageMask }

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
	// PermRW and PermRWX are common combinations.
	PermRW  = PermR | PermW
	PermRWX = PermR | PermW | PermX
)

func (p Perm) String() string {
	s := []byte("---")
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s)
}

// Fault describes the outcome of a translation.
type Fault uint8

// Translation outcomes.
const (
	FaultNone Fault = iota
	FaultNotMapped
	FaultProtection
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultNotMapped:
		return "not-mapped"
	case FaultProtection:
		return "protection"
	}
	return "fault?"
}

// Access is the kind of memory access being translated.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

// Physical is the machine's physical memory.
type Physical struct {
	frames   map[uint64]*[PageSize]byte
	nextFree uint64
}

// NewPhysical returns empty physical memory. Frame 0 is reserved (never
// allocated) so that physical address 0 is always invalid.
func NewPhysical() *Physical {
	return &Physical{frames: make(map[uint64]*[PageSize]byte), nextFree: 1}
}

// AllocFrame allocates the next free frame and returns its frame number.
func (p *Physical) AllocFrame() uint64 {
	for p.frames[p.nextFree] != nil {
		p.nextFree++
	}
	pfn := p.nextFree
	p.frames[pfn] = new([PageSize]byte)
	p.nextFree++
	return pfn
}

// AllocFrameAt allocates a frame at a specific frame number, the PTEditor-
// style privilege the experiment harness uses to construct IPAs with chosen
// hash values. It reports an error if the frame is taken or out of range.
func (p *Physical) AllocFrameAt(pfn uint64) error {
	if pfn == 0 || pfn > MaxFrame {
		return fmt.Errorf("mem: frame %#x out of range", pfn)
	}
	if p.frames[pfn] != nil {
		return fmt.Errorf("mem: frame %#x already allocated", pfn)
	}
	p.frames[pfn] = new([PageSize]byte)
	return nil
}

// FreeFrame releases a frame.
func (p *Physical) FreeFrame(pfn uint64) { delete(p.frames, pfn) }

// Allocated reports whether a frame exists.
func (p *Physical) Allocated(pfn uint64) bool { return p.frames[pfn] != nil }

// NumFrames returns the number of allocated frames.
func (p *Physical) NumFrames() int { return len(p.frames) }

func (p *Physical) frame(pa uint64) *[PageSize]byte {
	return p.frames[PFNOf(pa)]
}

// ReadBytes copies n bytes starting at physical address pa into a new slice.
// Reads of unallocated memory return zeros, like reads of uninitialized RAM.
// Accesses may cross frame boundaries (instruction fetch at arbitrary byte
// offsets requires this).
func (p *Physical) ReadBytes(pa uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		f := p.frame(pa + uint64(i))
		off := int(PageOffset(pa + uint64(i)))
		chunk := PageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if f != nil {
			copy(out[i:i+chunk], f[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// WriteBytes writes b starting at physical address pa. Writes to unallocated
// frames allocate them, so the harness can treat physical memory as flat.
func (p *Physical) WriteBytes(pa uint64, b []byte) {
	for i := 0; i < len(b); {
		pfn := PFNOf(pa + uint64(i))
		f := p.frames[pfn]
		if f == nil {
			f = new([PageSize]byte)
			p.frames[pfn] = f
		}
		off := int(PageOffset(pa + uint64(i)))
		chunk := PageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(f[off:off+chunk], b[i:i+chunk])
		i += chunk
	}
}

// Read64 reads a little-endian 64-bit value at pa.
func (p *Physical) Read64(pa uint64) uint64 {
	b := p.ReadBytes(pa, 8)
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Write64 writes a little-endian 64-bit value at pa.
func (p *Physical) Write64(pa, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	p.WriteBytes(pa, b[:])
}

// PTE is a page-table entry.
type PTE struct {
	PFN  uint64
	Perm Perm
	// COW marks a copy-on-write mapping: it is readable/executable but a
	// write must first be given a private copy by the kernel.
	COW bool
}

// AddrSpace is a per-process page table.
type AddrSpace struct {
	pages map[uint64]PTE
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]PTE)}
}

// Map installs a mapping from the virtual page containing va to pfn.
func (a *AddrSpace) Map(va, pfn uint64, perm Perm) {
	a.pages[VPN(va)] = PTE{PFN: pfn, Perm: perm}
}

// MapCOW installs a copy-on-write mapping.
func (a *AddrSpace) MapCOW(va, pfn uint64, perm Perm) {
	a.pages[VPN(va)] = PTE{PFN: pfn, Perm: perm, COW: true}
}

// Unmap removes the mapping of the page containing va.
func (a *AddrSpace) Unmap(va uint64) { delete(a.pages, VPN(va)) }

// Lookup returns the PTE for the page containing va.
func (a *AddrSpace) Lookup(va uint64) (PTE, bool) {
	pte, ok := a.pages[VPN(va)]
	return pte, ok
}

// Pages returns the number of mapped pages.
func (a *AddrSpace) Pages() int { return len(a.pages) }

// Each calls fn for every mapping.
func (a *AddrSpace) Each(fn func(vpn uint64, pte PTE)) {
	for vpn, pte := range a.pages {
		fn(vpn, pte)
	}
}

// Clone returns a deep copy of the address space (used by fork before COW
// marking).
func (a *AddrSpace) Clone() *AddrSpace {
	c := NewAddrSpace()
	for vpn, pte := range a.pages {
		c.pages[vpn] = pte
	}
	return c
}

// Translate translates va for the given access kind. On success it returns
// the physical address and FaultNone. A write to a COW page reports
// FaultProtection; the kernel resolves it by copying the frame.
func (a *AddrSpace) Translate(va uint64, acc Access) (uint64, Fault) {
	pte, ok := a.pages[VPN(va)]
	if !ok {
		return 0, FaultNotMapped
	}
	switch acc {
	case AccessRead:
		if pte.Perm&PermR == 0 {
			return 0, FaultProtection
		}
	case AccessWrite:
		if pte.Perm&PermW == 0 || pte.COW {
			return 0, FaultProtection
		}
	case AccessExec:
		if pte.Perm&PermX == 0 {
			return 0, FaultProtection
		}
	}
	return pte.PFN<<PageShift | PageOffset(va), FaultNone
}

// TLB is a small fully-associative translation cache with FIFO replacement.
// It exists for timing and the PMC instruction-TLB events; translations are
// always verified against the page table by the caller on miss.
type TLB struct {
	size    int
	order   []uint64 // FIFO of vpns
	entries map[uint64]uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(size int) *TLB {
	return &TLB{size: size, entries: make(map[uint64]uint64)}
}

// Lookup returns the cached pfn for va's page.
func (t *TLB) Lookup(va uint64) (uint64, bool) {
	pfn, ok := t.entries[VPN(va)]
	return pfn, ok
}

// Insert caches a translation.
func (t *TLB) Insert(va, pfn uint64) {
	vpn := VPN(va)
	if _, ok := t.entries[vpn]; ok {
		t.entries[vpn] = pfn
		return
	}
	if len(t.order) >= t.size {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, oldest)
	}
	t.order = append(t.order, vpn)
	t.entries[vpn] = pfn
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	t.order = t.order[:0]
	t.entries = make(map[uint64]uint64)
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }
