package summary

import "zenspec/internal/isa"

// Outcome classifies what one instruction did to the speculative walk.
type Outcome uint8

// Step outcomes.
const (
	// Continue: the state was updated (or untouched) and the walk proceeds
	// to the instruction's control-flow successors.
	Continue Outcome = iota
	// End: a terminal instruction or fence; the transient path dies here.
	End
	// Report: the instruction is a transmitter for the current chain — the
	// caller must emit a finding with the state's chain and this offset,
	// and the path ends (the transmitter is the end of the witness).
	Report
	// Redirect: a branch; the caller pushes the control-flow successors
	// (or ends the path in straight-line mode, which has no branch
	// windows). The state is never modified by a Redirect.
	Redirect
)

// Step applies one instruction of the always-mispredict speculative
// semantics to st. It is the single transfer function shared by the
// instruction-level engine and the block-summary recorder: both modes
// produce identical findings because both run exactly this code.
//
// off is the instruction's byte offset, used only as the value appended to
// the witness chain — the taint logic itself is position-independent, which
// is what makes recorded summaries relocatable. required is the dependent
// chain depth a transmitter needs (2 for STL, the Listing 2/3 chain; 1 for
// CTL, the V1 shape).
func Step(in isa.Inst, st *State, off, required int, straightLine bool) Outcome {
	depth := len(st.Chain)
	switch {
	case in.Op == isa.BAD, in.Op == isa.HALT, in.Op == isa.SYSCALL:
		// Terminal: the transient window cannot continue through these.
		return End

	case in.IsFence():
		// A fence serializes; the speculative chain dies here.
		return End

	case in.IsBranch():
		return Redirect

	case in.IsLoad():
		b := int(st.Reg[in.Src1])
		switch {
		case b >= required && depth >= required:
			return Report
		case depth == 0:
			// The speculative load: for STL any load after the store may
			// bypass it; for CTL the first load in the shadow reads the
			// value the branch was guarding.
			st.Chain = append(append([]int(nil), st.Chain...), off)
			st.SetReg(in.Dst, 1)
		case b >= depth && depth < required:
			// A load whose address derives from the chain deepens it.
			st.Chain = append(append([]int(nil), st.Chain...), off)
			st.SetReg(in.Dst, uint8(depth+1))
		default:
			// An unrelated load: its destination carries whatever the
			// abstract store says was last written there (taint survives
			// a spill/reload round trip), otherwise it is clean.
			lvl := uint8(0)
			if !straightLine {
				if t, ok := st.CellAt(in.Src1, in.Imm); ok {
					lvl = t
				}
			}
			st.SetReg(in.Dst, lvl)
		}
		return Continue

	case in.IsStore():
		if int(st.Reg[in.Src1]) >= required && depth >= required {
			// A tainted-address store transmits just like a load: it
			// moves the secret into a cache-visible location.
			return Report
		}
		if !straightLine {
			st.PutCell(in.Src1, in.Imm, st.Reg[in.Src2])
		}
		return Continue

	case in.Op == isa.CLFLUSH:
		if !straightLine && int(st.Reg[in.Src1]) >= required && depth >= required {
			// Flushing a secret-indexed line is a transmitter too
			// (flush-based channels observe the displacement).
			return Report
		}
		return Continue

	case in.WritesReg():
		st.SetReg(in.Dst, propagated(in, st))
		return Continue
	}
	return Continue
}

// propagated computes a register result's taint from its sources. Constants
// and timestamps are clean.
func propagated(in isa.Inst, st *State) uint8 {
	switch in.Op {
	case isa.MOVI, isa.RDPRU:
		return 0
	}
	srcs, n := in.SrcRegs()
	var max uint8
	for i := 0; i < n; i++ {
		if l := st.Reg[srcs[i]]; l > max {
			max = l
		}
	}
	return max
}
