// Package summary is the compositional core of the speccheck analyzer: the
// taint + abstract-store dataflow domain, the per-instruction transfer
// function, per-basic-block transfer summaries, per-source dependency
// closures, and the content-addressed stores that cache both.
//
// The design follows the summary-based speculative-leak detectors in the
// literature (Fabian et al.'s compositional speculative semantics, and
// modular weakest-precondition reasoning over speculative dataflow): instead
// of re-walking a program instruction by instruction on every scan, each
// straight-line block is summarized once per entry abstraction — the
// relocatable sequence of taint effects, chain extensions and findings the
// always-mispredict walk produces through it — and the whole-program result
// is composed from summaries along control-flow edges. Everything in this
// package is position-independent: a summary recorded for a block's bytes at
// one offset replays exactly at any other offset (and in any other program)
// whose bytes match, which is what lets a cache keyed by content hash share
// work across re-scans, program edits, and corpus gadgets with common code.
//
// The package deliberately contains no exploration policy: the driver in
// package speccheck owns source enumeration, the worklist, the visited set
// and budget accounting, so that summary-mode analysis reproduces the
// whole-program engine's findings byte for byte. Both engines call the one
// Step function below; equivalence is by construction, not by parallel
// maintenance.
package summary

import (
	"sort"

	"zenspec/internal/isa"
)

// MaxCells bounds the abstract store; the oldest cell is evicted first.
const MaxCells = 8

// Cell is one entry of the finite abstract store: the taint of the value
// last stored through [base+imm]. Addresses are tracked symbolically by their
// (base register, displacement) pair and invalidated when base is redefined.
type Cell struct {
	Base  isa.Reg
	Imm   int32
	Taint uint8
}

// State is the dataflow fact attached to one exploration path: per-register
// taint levels, the dependent-load chain built so far, and the abstract
// store. Taint level n means "derived from the n-th dependent load after the
// speculation source".
type State struct {
	Reg   [isa.NumRegs]uint8
	Chain []int
	Mem   []Cell
}

// Clone deep-copies the state so two exploration branches cannot alias.
func (s *State) Clone() State {
	c := State{Reg: s.Reg}
	c.Chain = append([]int(nil), s.Chain...)
	c.Mem = append([]Cell(nil), s.Mem...)
	return c
}

// SetReg assigns a taint level and invalidates abstract-store cells whose
// symbolic base just changed meaning.
func (s *State) SetReg(r isa.Reg, lvl uint8) {
	s.Reg[r] = lvl
	kept := s.Mem[:0]
	for _, c := range s.Mem {
		if c.Base != r {
			kept = append(kept, c)
		}
	}
	s.Mem = kept
}

// PutCell records the taint stored through [base+imm].
func (s *State) PutCell(base isa.Reg, imm int32, taint uint8) {
	for i := range s.Mem {
		if s.Mem[i].Base == base && s.Mem[i].Imm == imm {
			s.Mem[i].Taint = taint
			return
		}
	}
	if len(s.Mem) == MaxCells {
		copy(s.Mem, s.Mem[1:])
		s.Mem = s.Mem[:MaxCells-1]
	}
	s.Mem = append(s.Mem, Cell{Base: base, Imm: imm, Taint: taint})
}

// CellAt returns the recorded taint of the value reachable through
// [base+imm], if any.
func (s *State) CellAt(base isa.Reg, imm int32) (uint8, bool) {
	for _, c := range s.Mem {
		if c.Base == base && c.Imm == imm {
			return c.Taint, true
		}
	}
	return 0, false
}

// KeySuffix builds the position-independent tail of the visited-set key:
// chain *length* (not the exact offsets — states differing only in witness
// history merge), register taints, and the abstract store cells in canonical
// (sorted) order. Key prepends the byte offset to it.
func (s *State) KeySuffix() []byte {
	buf := make([]byte, 0, 1+isa.NumRegs+len(s.Mem)*6)
	buf = append(buf, byte(len(s.Chain)))
	buf = append(buf, s.Reg[:]...)
	cells := append([]Cell(nil), s.Mem...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Base != cells[j].Base {
			return cells[i].Base < cells[j].Base
		}
		return cells[i].Imm < cells[j].Imm
	})
	for _, c := range cells {
		buf = append(buf, byte(c.Base), byte(c.Imm), byte(c.Imm>>8), byte(c.Imm>>16), byte(c.Imm>>24), c.Taint)
	}
	return buf
}

// Key builds the canonical visited-set key for the state at a byte offset.
func (s *State) Key(off int) string {
	return PatchKey(off, s.KeySuffix())
}

// PatchKey assembles a visited-set key from a byte offset and a precomputed
// position-independent suffix: what a block summary stores per step so the
// driver can reconstruct the exact key the instruction-level walk would use.
func PatchKey(off int, suffix []byte) string {
	buf := make([]byte, 0, 4+len(suffix))
	buf = append(buf, byte(off), byte(off>>8), byte(off>>16), byte(off>>24))
	buf = append(buf, suffix...)
	return string(buf)
}

// EntryKey is the content-addressed entry abstraction a block summary is
// keyed by: the source kind's required chain depth, the scan mode, and the
// full entry state up to chain history. Unlike the visited key, the abstract
// store keeps its insertion order — eviction in PutCell is order-sensitive,
// so two entries whose cells differ only in order must not share a summary.
func EntryKey(s *State, required int, straightLine bool) string {
	buf := make([]byte, 0, 3+1+isa.NumRegs+len(s.Mem)*6)
	sl := byte(0)
	if straightLine {
		sl = 1
	}
	buf = append(buf, byte(required), sl, byte(len(s.Chain)))
	buf = append(buf, s.Reg[:]...)
	for _, c := range s.Mem {
		buf = append(buf, byte(c.Base), byte(c.Imm), byte(c.Imm>>8), byte(c.Imm>>16), byte(c.Imm>>24), c.Taint)
	}
	return string(buf)
}
