package summary_test

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"zenspec/internal/speccheck/summary"
)

func TestMemStoreRoundTripAndEviction(t *testing.T) {
	s := summary.NewMemStore(3)
	for i := 0; i < 5; i++ {
		s.Put("k"+strconv.Itoa(i), []byte{byte(i)})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after eviction", s.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Get("k" + strconv.Itoa(i)); ok {
			t.Errorf("k%d survived FIFO eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		v, ok := s.Get("k" + strconv.Itoa(i))
		if !ok || v[0] != byte(i) {
			t.Errorf("k%d = %v, %v", i, v, ok)
		}
	}
	// Re-putting an existing key must not double-count it.
	s.Put("k4", []byte{44})
	if v, _ := s.Get("k4"); s.Len() != 3 || v[0] != 44 {
		t.Errorf("after overwrite: len=%d v=%v", s.Len(), v)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	s, err := summary.NewDirStore(filepath.Join(t.TempDir(), "d"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("Get on empty store hit")
	}
	s.Put("alpha", []byte("one"))
	s.Put("beta", []byte{})
	if v, ok := s.Get("alpha"); !ok || string(v) != "one" {
		t.Errorf("alpha = %q, %v", v, ok)
	}
	if v, ok := s.Get("beta"); !ok || len(v) != 0 {
		t.Errorf("beta = %q, %v", v, ok)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

// TestDirStoreCorruptEntryHeals: corrupt files read as misses and are removed
// so the next Put rewrites them.
func TestDirStoreCorruptEntryHeals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "d")
	s, err := summary.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("key", []byte("value"))
	files, _ := filepath.Glob(filepath.Join(dir, "*.sce"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	if err := os.WriteFile(files[0], []byte("XXmangled"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed")
	}
	s.Put("key", []byte("value"))
	if v, ok := s.Get("key"); !ok || string(v) != "value" {
		t.Errorf("healed entry = %q, %v", v, ok)
	}
}

// TestDirStoreKeyEchoDetectsMismatch: a well-formed entry stored under the
// wrong filename (filename collision, renamed file) must not be served.
func TestDirStoreKeyEchoDetectsMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "d")
	s, err := summary.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("original", []byte("payload"))
	files, _ := filepath.Glob(filepath.Join(dir, "*.sce"))
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a swapped file: the bytes are a valid entry for "original"
	// but land at "other"'s path.
	s.Put("other", []byte("other-payload"))
	files2, _ := filepath.Glob(filepath.Join(dir, "*.sce"))
	for _, f := range files2 {
		if f != files[0] {
			if err := os.WriteFile(f, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := s.Get("other"); ok {
		t.Error("entry with mismatched key echo served as a hit")
	}
}

func TestDirStorePrunesPastCap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "d")
	s, err := summary.NewDirStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// pruneEvery is 64: exactly 64 puts guarantees one prune pass ran.
	for i := 0; i < 64; i++ {
		s.Put("k"+strconv.Itoa(i), []byte{byte(i)})
	}
	if n := s.Len(); n != 4 {
		t.Errorf("Len = %d after prune, want 4", n)
	}
}
