package summary

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"zenspec/internal/isa"
)

// Fingerprint captures every Options knob that changes a per-source analysis
// result. Stride is absent (it only selects which sources are scanned), and
// Base is absent because the dependency closure records branch targets
// relative to the source — a uniformly rebased program keys identically.
type Fingerprint struct {
	Window       int
	MaxStates    int
	StraightLine bool
}

// InvalidTarget marks a branch whose target the engine cannot resolve (it
// falls below the mapping base or past the end of the buffer), mirroring
// CFG.TargetOff's failure cases.
const InvalidTarget = int64(math.MinInt64)

// Range is one instruction run of a dependency closure, relative to the
// source offset.
type Range struct {
	Rel   int
	Insts int
}

// BranchDep is one branch the closure crossed: its offset and resolved
// target, both relative to the source. Including targets in the source key
// is what keeps content-equal code at different addresses from sharing a
// result when their branch displacements differ relative to the source.
type BranchDep struct {
	Rel    int
	Target int64
}

// Closure is the static over-approximation of everything one source's
// always-mispredict walk can read: instruction ranges reachable within the
// window from the source (following both branch directions), plus the
// resolved relative target of every branch crossed. Hashing the ranges'
// bytes plus the descriptor yields a key that is stable under edits outside
// the closure and under relocation of the whole region — the foundation of
// the incremental cache.
type Closure struct {
	Ranges   []Range
	Branches []BranchDep
	// Fallback is set when the closure grew past its range budget and
	// degraded to "the whole buffer at this absolute position": still
	// correct, but invalidated by any edit.
	Fallback bool
}

// maxStarts bounds the closure's sweep count before degrading to the
// whole-buffer fallback.
const maxStarts = 64

// targetOff resolves a branch's absolute target VA to a byte offset exactly
// the way CFG.TargetOff does; the two must not drift (a dependency closure
// that resolves differently from the engine would relocate results
// incorrectly).
func targetOff(codeLen int, base uint64, in isa.Inst) (int, bool) {
	t := uint64(uint32(in.Imm))
	if t < base {
		return 0, false
	}
	off := int(t - base)
	if off+isa.InstBytes > codeLen {
		return 0, false
	}
	return off, true
}

// CloseOver computes the dependency closure of the source at src: linear
// sweeps of window+1 instructions from the source and from every reachable
// branch target, each sweep stopping at terminals and fences (where the
// transient path always dies) and at unconditional redirects. The result
// over-approximates the engine's reachable set — a superset is sound (it
// only hashes more bytes); a subset would let a stale cache entry survive an
// edit that changes the analysis.
func CloseOver(code []byte, base uint64, src, window int, straightLine bool) Closure {
	var c Closure
	// seen doubles as the worklist: starts are appended once and swept in
	// order (bounded by maxStarts, so the linear membership scan stays cheap
	// and no map is allocated on the hot path).
	seen := make([]int, 1, 8)
	seen[0] = src
	saw := func(t int) bool {
		for _, s := range seen {
			if s == t {
				return true
			}
		}
		return false
	}
	for w := 0; w < len(seen); w++ {
		start := seen[w]
		n := 0
		for off := start; off+isa.InstBytes <= len(code) && n <= window; off += isa.InstBytes {
			n++
			in := isa.Decode(code[off:])
			if in.Op == isa.BAD || in.Op == isa.HALT || in.Op == isa.SYSCALL || in.IsFence() {
				break
			}
			if in.IsBranch() {
				dep := BranchDep{Rel: off - src, Target: InvalidTarget}
				if t, ok := targetOff(len(code), base, in); ok {
					dep.Target = int64(t - src)
					if !straightLine && !saw(t) {
						seen = append(seen, t)
					}
				}
				c.Branches = append(c.Branches, dep)
				if in.Op == isa.JMP || straightLine {
					// An unconditional redirect has no fall-through; a
					// straight-line walk dies at any branch.
					break
				}
			}
		}
		if n > 0 {
			c.Ranges = append(c.Ranges, Range{Rel: start - src, Insts: n})
		}
		if len(seen) > maxStarts {
			// Cover every byte (rounding the instruction count up so a
			// trailing partial slot still participates in the hash).
			return Closure{
				Ranges:   []Range{{Rel: -src, Insts: (len(code) + isa.InstBytes - 1) / isa.InstBytes}},
				Fallback: true,
			}
		}
	}
	sort.Slice(c.Ranges, func(i, j int) bool { return c.Ranges[i].Rel < c.Ranges[j].Rel })
	sort.Slice(c.Branches, func(i, j int) bool {
		if c.Branches[i].Rel != c.Branches[j].Rel {
			return c.Branches[i].Rel < c.Branches[j].Rel
		}
		return c.Branches[i].Target < c.Branches[j].Target
	})
	return c
}

// SourceKey derives the content-addressed cache key for one source: a
// SHA-256 over the analysis fingerprint, the source kind, the closure
// descriptor (relative ranges, branch targets, fallback position) and the
// raw bytes of every closure range. Equal keys imply equal analysis results
// relative to the source.
func SourceKey(code []byte, src int, kind byte, fp Fingerprint, c Closure) string {
	var k Keyer
	return k.SourceKey(code, src, kind, fp, c)
}

// Keyer computes source keys while reusing an internal scratch buffer, so a
// scan that keys thousands of sources does not reallocate the preimage for
// each one. The zero value is ready to use; a Keyer is not safe for
// concurrent use.
type Keyer struct {
	buf []byte
}

// SourceKey is the method form of the package-level SourceKey.
func (kr *Keyer) SourceKey(code []byte, src int, kind byte, fp Fingerprint, c Closure) string {
	// Assemble the preimage in the scratch buffer and hash it in one pass:
	// this runs once per source on every warm scan, and streaming many tiny
	// writes into a digest dominated the warm-path profile.
	buf := kr.buf[:0]
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	buf = append(buf, "zenspec/speccheck/source/v1"...)
	u64(uint64(fp.Window))
	u64(uint64(fp.MaxStates))
	sl := uint64(0)
	if fp.StraightLine {
		sl = 1
	}
	u64(sl)
	u64(uint64(kind))
	fb := uint64(0)
	if c.Fallback {
		fb = 1
	}
	u64(fb)
	u64(uint64(len(c.Ranges)))
	if c.Fallback {
		// The fallback covers the whole buffer, which can be megabytes:
		// stream it through a digest instead of copying it into the scratch.
		// Its key is position-dependent anyway (Rel encodes the absolute
		// source position), so raw bytes — absolute branch targets included —
		// are fine.
		r := c.Ranges[0]
		u64(uint64(int64(r.Rel)))
		u64(uint64(int64(r.Insts)))
		h := sha256.New()
		h.Write(buf)
		start := src + r.Rel
		end := start + r.Insts*isa.InstBytes
		if end > len(code) {
			end = len(code)
		}
		h.Write(code[start:end])
		buf = binary.LittleEndian.AppendUint64(buf[:0], uint64(len(c.Branches)))
		for _, b := range c.Branches {
			u64(uint64(int64(b.Rel)))
			u64(uint64(b.Target))
		}
		h.Write(buf)
		kr.buf = buf
		return string(h.Sum(nil))
	}
	for _, r := range c.Ranges {
		u64(uint64(int64(r.Rel)))
		u64(uint64(int64(r.Insts)))
		start := src + r.Rel
		end := start + r.Insts*isa.InstBytes
		if end > len(code) {
			end = len(code)
		}
		// Branch immediates are absolute VAs, so hashing them raw would tie
		// the key to the mapping position and defeat relocation sharing.
		// Mask them out: every branch a sweep crossed is in c.Branches with
		// its source-relative target, which carries the semantics instead.
		for off := start; off+isa.InstBytes <= end; off += isa.InstBytes {
			slot := code[off : off+isa.InstBytes]
			if isa.Decode(slot).IsBranch() {
				buf = append(buf, slot[:4]...)
				buf = append(buf, 0, 0, 0, 0)
			} else {
				buf = append(buf, slot...)
			}
		}
	}
	u64(uint64(len(c.Branches)))
	for _, b := range c.Branches {
		u64(uint64(int64(b.Rel)))
		u64(uint64(b.Target))
	}
	kr.buf = buf
	sum := sha256.Sum256(buf)
	return string(sum[:])
}
