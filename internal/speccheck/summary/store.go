package summary

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is a content-addressed byte store: keys are derived from content
// hashes (SourceKey, HashBlock), values are opaque serialized summaries. A
// Store may drop entries at any time (eviction, corruption); callers must
// treat every Get miss as "recompute and Put again".
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
	// Len reports the number of live entries (best effort for disk stores).
	Len() int
}

// MemStore is an in-memory Store with FIFO eviction once max entries are
// exceeded (max <= 0 means unbounded).
type MemStore struct {
	max   int
	m     map[string][]byte
	order []string
}

// NewMemStore returns an empty in-memory store capped at max entries.
func NewMemStore(max int) *MemStore {
	return &MemStore{max: max, m: make(map[string][]byte)}
}

// Get returns the stored value for key.
func (s *MemStore) Get(key string) ([]byte, bool) {
	v, ok := s.m[key]
	return v, ok
}

// Put stores val under key, evicting the oldest entries past the cap.
func (s *MemStore) Put(key string, val []byte) {
	if _, exists := s.m[key]; !exists {
		s.order = append(s.order, key)
	}
	s.m[key] = val
	for s.max > 0 && len(s.m) > s.max {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.m, victim)
	}
}

// Len reports the number of live entries.
func (s *MemStore) Len() int { return len(s.m) }

// DirStore is a persistent Store: one file per entry under dir, named by the
// SHA-256 of the key (keys are already hash-derived, but hashing again keeps
// file names fixed-length and filesystem-safe). Values are written with a
// header echoing the full key, so a Get can detect both corruption and the
// astronomically unlikely filename collision and report a miss instead of
// returning a wrong summary; corrupt files are deleted on detection and
// rewritten by the next Put. When the store grows past max entries, the
// oldest files (by modification time) are pruned.
type DirStore struct {
	dir  string
	max  int
	puts int
}

// pruneEvery bounds how often Put rescans the directory for eviction.
const pruneEvery = 64

// NewDirStore opens (creating if needed) a persistent store rooted at dir,
// capped at max entries (max <= 0 means unbounded).
func NewDirStore(dir string, max int) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("summary: cache dir: %w", err)
	}
	return &DirStore{dir: dir, max: max}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".sce")
}

// Get loads the value stored for key, verifying the embedded key header. A
// missing, corrupt, or mismatched file is a miss (and corrupt files are
// removed so the cache heals itself).
func (s *DirStore) Get(key string) ([]byte, bool) {
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	val, ok := decodeEntry(raw, key)
	if !ok {
		os.Remove(p)
		return nil, false
	}
	return val, true
}

// Put stores val under key, writing via a temporary file so a crashed write
// leaves a detectable (and self-healing) partial instead of a plausible one.
func (s *DirStore) Put(key string, val []byte) {
	p := s.path(key)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, encodeEntry(key, val), 0o644); err != nil {
		return // a write failure degrades to "no cache", never to an error
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return
	}
	if s.puts++; s.max > 0 && s.puts%pruneEvery == 0 {
		s.prune()
	}
}

// Len counts the live entry files.
func (s *DirStore) Len() int {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.sce"))
	if err != nil {
		return 0
	}
	return len(names)
}

// prune removes the oldest entries past the cap.
func (s *DirStore) prune() {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.sce"))
	if err != nil || len(names) <= s.max {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	files := make([]aged, 0, len(names))
	for _, n := range names {
		st, err := os.Stat(n)
		if err != nil {
			continue
		}
		files = append(files, aged{n, st.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for i := 0; i < len(files)-s.max; i++ {
		os.Remove(files[i].name)
	}
}

// entryMagic versions the on-disk entry framing.
const entryMagic = "SCE1"

// encodeEntry frames a value as magic || keyLen || key || val.
func encodeEntry(key string, val []byte) []byte {
	out := make([]byte, 0, len(entryMagic)+2+len(key)+len(val))
	out = append(out, entryMagic...)
	out = append(out, byte(len(key)), byte(len(key)>>8))
	out = append(out, key...)
	return append(out, val...)
}

// decodeEntry unframes raw, verifying the magic and the embedded key.
func decodeEntry(raw []byte, key string) ([]byte, bool) {
	hdr := len(entryMagic) + 2
	if len(raw) < hdr || string(raw[:len(entryMagic)]) != entryMagic {
		return nil, false
	}
	klen := int(raw[len(entryMagic)]) | int(raw[len(entryMagic)+1])<<8
	if len(raw) < hdr+klen || string(raw[hdr:hdr+klen]) != key {
		return nil, false
	}
	return raw[hdr+klen:], true
}
