package summary

import (
	"crypto/sha256"

	"zenspec/internal/isa"
)

// BlockCap bounds the instruction count of one summarized block. Longer
// straight-line runs split into chained blocks (EndEdge falls through into
// the next), so the cap only affects summary granularity, never results.
const BlockCap = 64

// EndKind says how a block summary's walk left the block.
type EndKind uint8

// Block end kinds.
const (
	// EndDead: the path died inside the block (terminal, fence, a reported
	// transmitter, or a straight-line walk hitting a branch). Nothing is
	// pushed after the steps are applied.
	EndDead EndKind = iota
	// EndEdge: the walk survived the whole block; the driver continues at
	// the control-flow successors of the block's last instruction (a
	// branch's fall-through and target, or plain fall-through when the
	// block ended at BlockCap or at the end of the buffer).
	EndEdge
)

// StepRec is one instruction's recorded effect inside a block summary —
// everything the driver needs to replay the instruction-level walk exactly,
// without decoding or re-deriving taint: the position-independent visited-key
// suffix of the pre-state, whether the instruction extends the witness
// chain, and whether it transmits (which also ends the path).
type StepRec struct {
	KeySuffix []byte
	Append    bool
	Report    bool
}

// BlockSummary is the transfer summary of one basic block for one entry
// abstraction: the exact per-instruction effect sequence, how the block
// ends, and the exit state (registers and abstract store; the exit chain is
// reconstructed by the driver from the entry chain plus the Append steps).
// Everything is relative to the block start, so a summary recorded at one
// position replays at any other position with identical bytes.
type BlockSummary struct {
	Steps   []StepRec
	End     EndKind
	ExitReg [isa.NumRegs]uint8
	ExitMem []Cell
}

// ScanBlock decodes the maximal straight-line run starting at off: up to
// BlockCap instructions, ending at (and including) the first branch,
// terminal, or fence, or at the end of the buffer. The returned instructions
// are what Record summarizes; hashing code[off : off+len(insts)*InstBytes]
// identifies the block's content.
func ScanBlock(code []byte, off int) []isa.Inst {
	var insts []isa.Inst
	for o := off; o+isa.InstBytes <= len(code) && len(insts) < BlockCap; o += isa.InstBytes {
		in := isa.Decode(code[o:])
		insts = append(insts, in)
		if in.IsBranch() || in.IsFence() ||
			in.Op == isa.BAD || in.Op == isa.HALT || in.Op == isa.SYSCALL {
			break
		}
	}
	return insts
}

// HashBlock content-addresses a block: the SHA-256 of its raw instruction
// bytes. Two blocks with equal hashes decode identically and therefore share
// summaries, wherever (and in whichever program) they appear. The scan
// length is implied by the content: a run that stopped early at a buffer
// boundary hashes fewer bytes than the same prefix followed by more code.
func HashBlock(code []byte, off, n int) [sha256.Size]byte {
	return sha256.Sum256(code[off : off+n*isa.InstBytes])
}

// Record computes the block summary of insts for one entry abstraction by
// replaying Step over a scratch state — the same transfer function the
// instruction-level engine runs, so the summary is exact by construction.
// Only the entry's register taints, abstract store and chain *length* matter
// (captured by EntryKey); the concrete chain offsets never influence the
// walk.
func Record(insts []isa.Inst, entry *State, required int, straightLine bool) *BlockSummary {
	st := State{Reg: entry.Reg}
	st.Chain = make([]int, len(entry.Chain))
	st.Mem = append([]Cell(nil), entry.Mem...)

	s := &BlockSummary{End: EndEdge}
	for i, in := range insts {
		rec := StepRec{KeySuffix: st.KeySuffix()}
		before := len(st.Chain)
		out := Step(in, &st, i*isa.InstBytes, required, straightLine)
		rec.Append = len(st.Chain) > before
		rec.Report = out == Report
		s.Steps = append(s.Steps, rec)
		switch out {
		case End, Report:
			s.End = EndDead
		case Redirect:
			if straightLine {
				// Straight-line mode has no branch windows: the path dies
				// at the branch instead of following its successors.
				s.End = EndDead
			}
		case Continue:
			continue
		}
		break
	}
	s.ExitReg = st.Reg
	s.ExitMem = st.Mem
	return s
}
