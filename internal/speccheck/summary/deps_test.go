package summary_test

import (
	"testing"

	"zenspec/internal/isa"
	"zenspec/internal/speccheck/summary"
)

func inst(in isa.Inst) []byte {
	var b [isa.InstBytes]byte
	in.Encode(b[:])
	return b[:]
}

// prog concatenates instruction encodings.
func prog(ins ...isa.Inst) []byte {
	var out []byte
	for _, in := range ins {
		out = append(out, inst(in)...)
	}
	return out
}

var fp = summary.Fingerprint{Window: 48, MaxStates: 16384}

// TestSourceKeyLocality: edits outside the closure leave the key unchanged;
// edits inside change it.
func TestSourceKeyLocality(t *testing.T) {
	code := prog(
		isa.Inst{Op: isa.MOVI, Dst: isa.RAX, Imm: 7},        // +0: before the source
		isa.Inst{Op: isa.STORE, Src1: isa.RCX},              // +8: source
		isa.Inst{Op: isa.LOAD, Dst: isa.RDX, Src1: isa.R14}, // +16
		isa.Inst{Op: isa.HALT},                              // +24: sweep stops
		isa.Inst{Op: isa.ADD, Dst: isa.RBX, Src1: isa.RBX},  // +32: past the halt
	)
	const src = 8
	cl := summary.CloseOver(code, 0, src, fp.Window, false)
	if cl.Fallback {
		t.Fatal("tiny program degraded to fallback")
	}
	key := summary.SourceKey(code, src, 0, fp, cl)

	outside := append([]byte(nil), code...)
	copy(outside[:isa.InstBytes], inst(isa.Inst{Op: isa.NOP}))
	copy(outside[32:], inst(isa.Inst{Op: isa.NOP}))
	clO := summary.CloseOver(outside, 0, src, fp.Window, false)
	if got := summary.SourceKey(outside, src, 0, fp, clO); got != key {
		t.Error("edit outside the closure changed the key")
	}

	inside := append([]byte(nil), code...)
	copy(inside[16:], inst(isa.Inst{Op: isa.NOP}))
	clI := summary.CloseOver(inside, 0, src, fp.Window, false)
	if got := summary.SourceKey(inside, src, 0, fp, clI); got == key {
		t.Error("edit inside the closure did not change the key")
	}
}

// TestSourceKeyRelocatable: the same bytes at a different offset (with a
// branch whose displacement from the source is preserved) key identically,
// and a changed displacement keys differently.
func TestSourceKeyRelocatable(t *testing.T) {
	// source store, conditional branch over one instruction, load, halt —
	// assembled at byte offset `at` with the branch target absolute.
	build := func(at int, skip int) []byte {
		pad := make([]byte, at)
		body := prog(
			isa.Inst{Op: isa.STORE, Src1: isa.RCX},
			isa.Inst{Op: isa.JNZ, Src1: isa.RAX, Imm: int32(at + (2+skip)*isa.InstBytes)},
			isa.Inst{Op: isa.LOAD, Dst: isa.RDX, Src1: isa.R14},
			isa.Inst{Op: isa.HALT},
		)
		return append(pad, body...)
	}
	k1 := func(code []byte, src int) string {
		return summary.SourceKey(code, src, 0, fp, summary.CloseOver(code, 0, src, fp.Window, false))
	}
	a := build(0, 1)
	b := build(40, 1)
	if k1(a, 0) != k1(b, 40) {
		t.Error("relocated source keyed differently")
	}
	c := build(0, 2) // branch skips further: different relative target
	if k1(a, 0) == k1(c, 0) {
		t.Error("changed branch displacement keyed identically")
	}
}

// TestCloseOverFallback: a branch fan-out past the sweep budget degrades to
// the whole-buffer fallback instead of an unsound partial closure.
func TestCloseOverFallback(t *testing.T) {
	// 100 conditional branches each targeting a distinct later offset: every
	// one enqueues a new sweep start.
	var ins []isa.Inst
	const n = 100
	for i := 0; i < n; i++ {
		ins = append(ins, isa.Inst{Op: isa.JNZ, Src1: isa.RAX, Imm: int32((n + i) * isa.InstBytes)})
	}
	for i := 0; i < n; i++ {
		ins = append(ins, isa.Inst{Op: isa.ADD, Dst: isa.RBX, Src1: isa.RBX})
	}
	code := prog(ins...)
	cl := summary.CloseOver(code, 0, 0, 200, false)
	if !cl.Fallback {
		t.Fatal("fan-out past the budget did not trigger the fallback")
	}
	if len(cl.Ranges) != 1 || cl.Ranges[0].Rel != 0 || cl.Ranges[0].Insts != 2*n {
		t.Errorf("fallback ranges = %+v", cl.Ranges)
	}
}

// TestCloseOverStraightLine: straight-line closures stop at the first branch
// and never follow targets.
func TestCloseOverStraightLine(t *testing.T) {
	code := prog(
		isa.Inst{Op: isa.STORE, Src1: isa.RCX},
		isa.Inst{Op: isa.JNZ, Src1: isa.RAX, Imm: 4 * isa.InstBytes},
		isa.Inst{Op: isa.LOAD, Dst: isa.RDX, Src1: isa.R14},
		isa.Inst{Op: isa.HALT},
		isa.Inst{Op: isa.ADD, Dst: isa.RBX, Src1: isa.RBX},
	)
	cl := summary.CloseOver(code, 0, 0, 48, true)
	if len(cl.Ranges) != 1 || cl.Ranges[0].Insts != 2 {
		t.Errorf("straight-line closure = %+v, want the run up to the branch", cl)
	}
}
