package speccheck

import (
	"math/rand"

	"zenspec/internal/isa"
)

// GenProgram deterministically generates an n-instruction pseudo-random
// program for benchmarks, scale experiments and equivalence testing: a
// realistic mix of ALU traffic, loads, stores, short forward branches,
// occasional fences and terminals, with STL- and CTL-shaped leak gadgets
// planted at low density so analyses over the program have real findings.
// The same (seed, n) always yields the same bytes; branch targets are
// absolute VAs assuming the program is mapped at base 0.
func GenProgram(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	code := make([]byte, 0, n*isa.InstBytes)
	emit := func(in isa.Inst) {
		var b [isa.InstBytes]byte
		in.Encode(b[:])
		code = append(code, b[:]...)
	}
	reg := func() isa.Reg { return isa.Reg(rng.Intn(isa.NumRegs)) }
	// target encodes a forward branch target k instructions ahead of the
	// instruction about to be emitted.
	target := func(k int) int32 { return int32(len(code) + k*isa.InstBytes) }

	for len(code) < n*isa.InstBytes {
		switch r := rng.Intn(1000); {
		case r < 4:
			// Planted STL gadget: store, bypassing load, dependent load,
			// transmitter (the Listing 2/3 chain).
			d1, d2 := reg(), reg()
			emit(isa.Inst{Op: isa.STORE, Src1: reg(), Src2: reg(), Imm: int32(rng.Intn(256))})
			emit(isa.Inst{Op: isa.LOAD, Dst: d1, Src1: reg()})
			emit(isa.Inst{Op: isa.LOAD, Dst: d2, Src1: d1})
			emit(isa.Inst{Op: isa.SHLI, Dst: d2, Src1: d2, Imm: 6})
			emit(isa.Inst{Op: isa.LOAD, Dst: reg(), Src1: d2})
		case r < 6:
			// Planted CTL gadget: guard branch, secret load, transmitter.
			d := reg()
			emit(isa.Inst{Op: isa.JNZ, Src1: reg(), Imm: target(4)})
			emit(isa.Inst{Op: isa.LOAD, Dst: d, Src1: reg()})
			emit(isa.Inst{Op: isa.ANDI, Dst: d, Src1: d, Imm: 0x3f})
			emit(isa.Inst{Op: isa.LOAD, Dst: reg(), Src1: d})
		case r < 30:
			emit(isa.Inst{Op: isa.STORE, Src1: reg(), Src2: reg(), Imm: int32(rng.Intn(64) * 8)})
		case r < 47:
			op := isa.JZ
			if rng.Intn(2) == 0 {
				op = isa.JNZ
			}
			emit(isa.Inst{Op: op, Src1: reg(), Imm: target(1 + rng.Intn(12))})
		case r < 50:
			emit(isa.Inst{Op: isa.JMP, Imm: target(1 + rng.Intn(8))})
		case r < 53:
			emit(isa.Inst{Op: isa.LFENCE})
		case r < 55:
			emit(isa.Inst{Op: isa.HALT})
		case r < 250:
			emit(isa.Inst{Op: isa.LOAD, Dst: reg(), Src1: reg(), Imm: int32(rng.Intn(64) * 8)})
		case r < 330:
			emit(isa.Inst{Op: isa.MOVI, Dst: reg(), Imm: int32(rng.Intn(1 << 16))})
		default:
			ops := [...]isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
				isa.ADDI, isa.SHLI, isa.SHRI, isa.IMUL, isa.MOV}
			op := ops[rng.Intn(len(ops))]
			emit(isa.Inst{Op: op, Dst: reg(), Src1: reg(), Src2: reg(), Imm: int32(rng.Intn(16))})
		}
	}
	return code[:n*isa.InstBytes]
}
