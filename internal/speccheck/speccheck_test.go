package speccheck_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/gadget"
	"zenspec/internal/isa"
	"zenspec/internal/speccheck"
)

// listing2STL builds the paper's Listing 2/3 STL shape: a slow store, a
// bypassing load, a dependent load and a transmitter.
func listing2STL() []byte {
	b := asm.NewBuilder()
	b.Movi(isa.R15, 0x4000)
	b.Load(isa.RCX, isa.R15, 0)
	b.Shli(isa.RCX, isa.RCX, 3)
	b.Add(isa.RCX, isa.RCX, isa.R13)
	b.Store(isa.RCX, 0, isa.RAX) // store (address resolves late)
	b.Load(isa.RDX, isa.R14, 0)  // ld1: may bypass the store
	b.Add(isa.RBX, isa.RDX, isa.R11)
	b.Load(isa.R8, isa.RBX, 0) // ld2: address from ld1
	b.Andi(isa.R8, isa.R8, 0xff)
	b.Shli(isa.R9, isa.R8, 3)
	b.Add(isa.R9, isa.R9, isa.R13)
	b.Load(isa.R10, isa.R9, 0) // transmit: address from ld2
	b.Halt()
	return b.MustAssemble(0)
}

func TestAnalyzeFindsListing2STL(t *testing.T) {
	findings := speccheck.Analyze(listing2STL(), speccheck.Options{})
	var stl []speccheck.Finding
	for _, f := range findings {
		if f.Kind == speccheck.KindSTL {
			stl = append(stl, f)
		}
	}
	if len(stl) != 1 {
		t.Fatalf("stl findings = %v, want exactly 1", stl)
	}
	f := stl[0]
	wantChain := []int{4 * isa.InstBytes, 5 * isa.InstBytes, 7 * isa.InstBytes, 11 * isa.InstBytes}
	if !reflect.DeepEqual(f.Chain(), wantChain) {
		t.Errorf("witness chain = %#v, want %#v", f.Chain(), wantChain)
	}
	if f.Depth != 2 {
		t.Errorf("depth = %d, want 2", f.Depth)
	}
}

// branchySTL interposes a conditional branch between ld1 and ld2; the
// straight-line scanner gives up at the branch, the CFG analyzer must not.
func branchySTL() []byte {
	b := asm.NewBuilder()
	b.Store(isa.RCX, 0, isa.RAX) // +0  store
	b.Load(isa.RDX, isa.R14, 0)  // +8  ld1
	b.Jnz(isa.RAX, "cont")       // +16 branch inside the window
	b.Nop()                      // +24
	b.Label("cont")
	b.Add(isa.RBX, isa.RDX, isa.R11) // +32
	b.Load(isa.R8, isa.RBX, 0)       // +40 ld2
	b.Shli(isa.R9, isa.R8, 3)        // +48
	b.Load(isa.R10, isa.R9, 0)       // +56 transmit
	b.Halt()
	return b.MustAssemble(0)
}

func TestAnalyzeSTLAcrossBranch(t *testing.T) {
	code := branchySTL()
	if got := gadget.Scan(code, gadget.Options{}); len(got) != 0 {
		t.Fatalf("straight-line scanner unexpectedly found %v", got)
	}
	findings := speccheck.Analyze(code, speccheck.Options{STL: true})
	if len(findings) == 0 {
		t.Fatal("CFG analyzer missed the STL gadget behind a branch")
	}
	f := findings[0]
	want := speccheck.Finding{
		Kind:        speccheck.KindSTL,
		SourceOff:   0,
		LoadOffs:    []int{8, 40},
		TransmitOff: 56,
		Depth:       2,
	}
	if !reflect.DeepEqual(f, want) {
		t.Errorf("finding = %+v, want %+v", f, want)
	}
}

// ctlGadget is the Spectre-V1/CTL shape: a bounds-check branch guarding a
// secret load whose value indexes the transmitter.
func ctlGadget() []byte {
	b := asm.NewBuilder()
	b.Jnz(isa.RDI, "out")       // +0  guard: mispredicted not-taken
	b.Load(isa.RDX, isa.RSI, 0) // +8  ld1: the secret
	b.Andi(isa.RDX, isa.RDX, 0x3f)
	b.Shli(isa.RDX, isa.RDX, 6)
	b.Add(isa.RDX, isa.RDX, isa.RBP)
	b.Load(isa.R8, isa.RDX, 0) // +40 transmit
	b.Label("out")
	b.Halt()
	return b.MustAssemble(0)
}

func TestAnalyzeFindsCTL(t *testing.T) {
	code := ctlGadget()
	// The legacy scanner cannot see this shape at all (no store, and it
	// stops at branches).
	if got := gadget.Scan(code, gadget.Options{}); len(got) != 0 {
		t.Fatalf("straight-line scanner unexpectedly found %v", got)
	}
	findings := speccheck.Analyze(code, speccheck.Options{CTL: true})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly 1", findings)
	}
	f := findings[0]
	want := speccheck.Finding{
		Kind:        speccheck.KindCTL,
		SourceOff:   0,
		LoadOffs:    []int{8},
		TransmitOff: 40,
		Depth:       1,
	}
	if !reflect.DeepEqual(f, want) {
		t.Errorf("finding = %+v, want %+v", f, want)
	}
	if !reflect.DeepEqual(f.Chain(), []int{0, 8, 40}) {
		t.Errorf("chain = %v", f.Chain())
	}
}

// TestAnalyzeTaintThroughMemory: a transient value spilled to memory and
// reloaded keeps its taint (the finite abstract store), which the legacy
// straight-line walk loses.
func TestAnalyzeTaintThroughMemory(t *testing.T) {
	b := asm.NewBuilder()
	b.Store(isa.RCX, 0, isa.RAX) // +0  source store
	b.Load(isa.RDX, isa.R14, 0)  // +8  ld1
	b.Store(isa.R15, 8, isa.RDX) // +16 spill the tainted value
	b.Jnz(isa.RAX, "next")       // +24 ends every legacy window
	b.Label("next")
	b.Load(isa.RBX, isa.R15, 8) // +32 reload: taint survives
	b.Load(isa.R8, isa.RBX, 0)  // +40 ld2
	b.Load(isa.R10, isa.R8, 0)  // +48 transmit
	b.Halt()
	code := b.MustAssemble(0)

	if got := gadget.Scan(code, gadget.Options{}); len(got) != 0 {
		t.Fatalf("straight-line scanner should lose taint at the spill, found %v", got)
	}
	findings := speccheck.Analyze(code, speccheck.Options{STL: true})
	if len(findings) == 0 {
		t.Fatal("taint did not survive the spill/reload round trip")
	}
	f := findings[0]
	if f.SourceOff != 0 || f.TransmitOff != 48 {
		t.Errorf("finding = %+v", f)
	}
	if !reflect.DeepEqual(f.LoadOffs, []int{8, 40}) {
		t.Errorf("load chain = %v, want [8 40]", f.LoadOffs)
	}
}

func TestAnalyzeWindowBound(t *testing.T) {
	b := asm.NewBuilder()
	b.Store(isa.RCX, 0, isa.RAX)
	b.Load(isa.RDX, isa.R14, 0)
	for i := 0; i < 60; i++ {
		b.Addi(isa.RDX, isa.RDX, 0)
	}
	b.Load(isa.R8, isa.RDX, 0)
	b.Load(isa.R10, isa.R8, 0)
	b.Halt()
	code := b.MustAssemble(0)
	if got := speccheck.Analyze(code, speccheck.Options{STL: true, Window: 16}); len(got) != 0 {
		t.Errorf("finding beyond the window: %v", got)
	}
	if got := speccheck.Analyze(code, speccheck.Options{STL: true, Window: 80}); len(got) == 0 {
		t.Error("finding inside a large window missed")
	}
}

func TestAnalyzeFenceEndsWindow(t *testing.T) {
	b := asm.NewBuilder()
	b.Jnz(isa.RDI, "out")
	b.Load(isa.RDX, isa.RSI, 0)
	b.Lfence() // speculation barrier: the classic V1 mitigation
	b.Shli(isa.RDX, isa.RDX, 6)
	b.Load(isa.R8, isa.RDX, 0)
	b.Label("out")
	b.Halt()
	if got := speccheck.Analyze(b.MustAssemble(0), speccheck.Options{}); len(got) != 0 {
		t.Errorf("fenced gadget still reported: %v", got)
	}
}

func TestAnalyzeInnocuousCode(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 1)
	b.Label("loop")
	b.Store(isa.R15, 0, isa.RAX)
	b.Load(isa.RBX, isa.R15, 8)
	b.Subi(isa.RCX, isa.RCX, 1)
	b.Jnz(isa.RCX, "loop")
	b.Halt()
	if got := speccheck.Analyze(b.MustAssemble(0), speccheck.Options{}); len(got) != 0 {
		t.Errorf("innocuous loop flagged: %v", got)
	}
}

// TestAnalyzeSlideStride: with Stride 1 the analyzer finds a gadget placed
// at a non-slot byte offset, the way the paper's code-sliding search places
// code anywhere in a page.
func TestAnalyzeSlideStride(t *testing.T) {
	gadgetCode := listing2STL()
	const shift = 3
	code := make([]byte, shift+len(gadgetCode))
	code[0], code[1], code[2] = 0x90, 0x90, 0x90 // junk prefix
	copy(code[shift:], gadgetCode)

	aligned := speccheck.Analyze(code, speccheck.Options{STL: true})
	for _, f := range aligned {
		if f.SourceOff == shift+4*isa.InstBytes {
			t.Fatalf("aligned scan should miss the shifted gadget, found %v", f)
		}
	}
	slid := speccheck.Analyze(code, speccheck.Options{STL: true, Stride: 1})
	found := false
	for _, f := range slid {
		if f.SourceOff == shift+4*isa.InstBytes && f.TransmitOff == shift+11*isa.InstBytes {
			found = true
		}
	}
	if !found {
		t.Errorf("stride-1 scan missed the gadget at byte offset %d: %v", shift, slid)
	}
}

func TestAnalyzeLoopTerminates(t *testing.T) {
	// A tight loop with a store inside: the state dedup and window bound
	// must terminate the exploration.
	b := asm.NewBuilder()
	b.Label("loop")
	b.Store(isa.RCX, 0, isa.RAX)
	b.Load(isa.RDX, isa.R14, 0)
	b.Load(isa.R8, isa.RDX, 0)
	b.Load(isa.R10, isa.R8, 0)
	b.Jnz(isa.RCX, "loop")
	b.Halt()
	findings := speccheck.Analyze(b.MustAssemble(0), speccheck.Options{})
	if len(findings) == 0 {
		t.Error("looped gadget not found")
	}
}

func TestFindingJSONRoundTrip(t *testing.T) {
	f := speccheck.Finding{Kind: speccheck.KindCTL, SourceOff: 0, LoadOffs: []int{8}, TransmitOff: 40, Depth: 1}
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var got speccheck.Finding
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Errorf("round trip %+v -> %s -> %+v", f, raw, got)
	}
}

func TestDefaultWindowSharedWithGadget(t *testing.T) {
	if gadget.DefaultWindow != speccheck.DefaultWindow {
		t.Errorf("gadget.DefaultWindow = %d, speccheck.DefaultWindow = %d",
			gadget.DefaultWindow, speccheck.DefaultWindow)
	}
}
