package speccheck_test

import (
	"fmt"
	"reflect"
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/speccheck"
)

// norm is the fully-defaulted baseline every zero field resolves to.
func norm(mut func(*speccheck.Options)) speccheck.Options {
	o := speccheck.Options{
		Window:    speccheck.DefaultWindow,
		Stride:    isa.InstBytes,
		MaxStates: 16384,
		STL:       true,
		CTL:       true,
	}
	if mut != nil {
		mut(&o)
	}
	return o
}

// TestOptionsNormalized tables every kind-selection combination plus the
// clamping rules, pinning down in particular the former footgun where
// StraightLine with CTL-only silently analyzed nothing.
func TestOptionsNormalized(t *testing.T) {
	stlOnly := func(o *speccheck.Options) { o.STL, o.CTL = true, false }
	cases := []struct {
		name string
		in   speccheck.Options
		want speccheck.Options
	}{
		{"zero selects everything", speccheck.Options{}, norm(nil)},
		{"stl only", speccheck.Options{STL: true}, norm(stlOnly)},
		{"ctl only", speccheck.Options{CTL: true},
			norm(func(o *speccheck.Options) { o.STL = false })},
		{"both explicit", speccheck.Options{STL: true, CTL: true}, norm(nil)},
		{"straightline defaults to stl", speccheck.Options{StraightLine: true},
			norm(func(o *speccheck.Options) { stlOnly(o); o.StraightLine = true })},
		{"straightline stl", speccheck.Options{StraightLine: true, STL: true},
			norm(func(o *speccheck.Options) { stlOnly(o); o.StraightLine = true })},
		{"straightline ctl-only falls back to stl",
			speccheck.Options{StraightLine: true, CTL: true},
			norm(func(o *speccheck.Options) { stlOnly(o); o.StraightLine = true })},
		{"straightline both", speccheck.Options{StraightLine: true, STL: true, CTL: true},
			norm(func(o *speccheck.Options) { stlOnly(o); o.StraightLine = true })},
		{"negative knobs clamp to defaults",
			speccheck.Options{Window: -1, Stride: -3, MaxStates: -7}, norm(nil)},
		{"explicit knobs survive",
			speccheck.Options{Window: 5, Stride: 3, MaxStates: 9, STL: true},
			speccheck.Options{Window: 5, Stride: 3, MaxStates: 9, STL: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Normalized(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Normalized(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// TestStraightLineCTLFallsBackToSTL checks the fallback behaviorally: the
// combination used to scan nothing at all.
func TestStraightLineCTLFallsBackToSTL(t *testing.T) {
	code := listing2STL()
	got := speccheck.Analyze(code, speccheck.Options{StraightLine: true, CTL: true})
	if len(got) == 0 {
		t.Fatal("StraightLine+CTL-only scanned nothing; want the STL fallback to find the gadget")
	}
	want := speccheck.Analyze(code, speccheck.Options{StraightLine: true, STL: true})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback findings = %v, want the straight-line STL findings %v", got, want)
	}
}

// TestNegativeKnobsRegression: a negative stride used to loop forever and a
// negative window silently scanned nothing; both now behave like the default.
func TestNegativeKnobsRegression(t *testing.T) {
	code := listing2STL()
	want := speccheck.Analyze(code, speccheck.Options{STL: true})
	for _, opts := range []speccheck.Options{
		{STL: true, Stride: -isa.InstBytes},
		{STL: true, Window: -10},
		{STL: true, MaxStates: -1},
	} {
		if got := speccheck.Analyze(code, opts); !reflect.DeepEqual(got, want) {
			t.Errorf("Analyze with %+v = %v, want %v", opts, got, want)
		}
	}
}

// TestNonDividingStride: strides that divide neither the buffer length nor
// the instruction size must terminate cleanly and only ever visit in-bounds
// slots; every finding they produce is also found by the byte-exact scan.
func TestNonDividingStride(t *testing.T) {
	code := listing2STL()
	all := speccheck.Analyze(code, speccheck.Options{STL: true, Stride: 1})
	index := make(map[int]bool, len(all))
	for _, f := range all {
		index[f.SourceOff] = true
	}
	for _, stride := range []int{1, 2, 3, 5, 7, 16, 1000} {
		got := speccheck.Analyze(code, speccheck.Options{STL: true, Stride: stride})
		for _, f := range got {
			if f.SourceOff%stride != 0 {
				t.Errorf("stride %d reported source at off-grid offset %d", stride, f.SourceOff)
			}
			if !index[f.SourceOff] {
				t.Errorf("stride %d found a source %d the stride-1 scan did not", stride, f.SourceOff)
			}
		}
	}
}

// branchDense builds a store-rooted gadget behind a cascade of diamonds
// whose arms taint distinct registers, so the state count grows combinatorially
// and a small MaxStates budget must truncate.
func branchDense(diamonds int) []byte {
	b := asm.NewBuilder()
	b.Store(isa.RCX, 0, isa.RAX) // source
	b.Load(isa.RDX, isa.R14, 0)  // ld1
	arms := []isa.Reg{isa.RSP, isa.RBP, isa.RSI, isa.RDI, isa.R12, isa.R15, isa.R9, isa.R10}
	for i := 0; i < diamonds; i++ {
		lbl := fmt.Sprintf("skip%d", i)
		b.Jnz(isa.RCX, lbl)
		b.Mov(arms[i%len(arms)], isa.RDX) // taint one more register on this arm
		b.Label(lbl)
	}
	b.Load(isa.R8, isa.RDX, 0) // ld2
	b.Shli(isa.R9, isa.R8, 3)
	b.Load(isa.R10, isa.R9, 0) // transmit
	b.Halt()
	return b.MustAssemble(0)
}

func TestAnalyzeAllSurfacesTruncation(t *testing.T) {
	code := branchDense(10)
	full := speccheck.AnalyzeAll(code, speccheck.Options{STL: true})
	if full.Truncated != 0 {
		t.Fatalf("default budget truncated %d sources; enlarge the test budget", full.Truncated)
	}
	if len(full.Findings) == 0 {
		t.Fatal("branch-dense gadget not found under the default budget")
	}
	small := speccheck.AnalyzeAll(code, speccheck.Options{STL: true, MaxStates: 8})
	if small.Truncated == 0 {
		t.Error("MaxStates=8 on a branch-dense program did not report truncation")
	}
	// The plain Analyze wrapper stays finding-compatible.
	if got := speccheck.Analyze(code, speccheck.Options{STL: true}); !reflect.DeepEqual(got, full.Findings) {
		t.Error("Analyze and AnalyzeAll disagree on findings")
	}
}
