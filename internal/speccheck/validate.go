package speccheck

import (
	"fmt"
	"strings"

	"zenspec/internal/cache"
	"zenspec/internal/isa"
	"zenspec/internal/mem"
	"zenspec/internal/obs"
	"zenspec/internal/pipeline"
	"zenspec/internal/pmc"
	"zenspec/internal/predict"
)

// Verdict classifies a static finding after dynamic replay.
type Verdict uint8

// Verdicts.
const (
	// VerdictOverApprox means no replay schedule produced a transient
	// execution of the transmitter: the finding stands as a static
	// over-approximation (it may still be reachable with inputs the
	// validator's heuristics did not construct).
	VerdictOverApprox Verdict = iota
	// VerdictConfirmed means the pipeline simulator, with its predictors
	// mistrained, transiently executed the transmitter with the speculative
	// source active — the leak is dynamically real.
	VerdictConfirmed
)

func (v Verdict) String() string {
	if v == VerdictConfirmed {
		return "confirmed"
	}
	return "over-approximation"
}

// Validation is the dynamic classification of one finding.
type Validation struct {
	Finding Finding `json:"finding"`
	Verdict Verdict `json:"-"`
	// Confirmed mirrors Verdict for JSON output.
	Confirmed bool `json:"confirmed"`
	// Detail says what evidence decided the verdict.
	Detail string `json:"detail"`
	// Runs is the total number of simulator runs performed.
	Runs int `json:"runs"`
}

// Report aggregates the validation of one Analyze result set.
type Report struct {
	Results []Validation `json:"results"`
}

// Confirmed counts dynamically confirmed findings.
func (r Report) Confirmed() int {
	n := 0
	for _, v := range r.Results {
		if v.Verdict == VerdictConfirmed {
			n++
		}
	}
	return n
}

// Precision is the confirmed fraction of all findings (1 when there are
// none): the static analyzer's measured precision against the simulator.
func (r Report) Precision() float64 {
	if len(r.Results) == 0 {
		return 1
	}
	return float64(r.Confirmed()) / float64(len(r.Results))
}

func (r Report) String() string {
	var sb strings.Builder
	for _, v := range r.Results {
		fmt.Fprintf(&sb, "%-18s %s (%s)\n", v.Verdict, v.Finding, v.Detail)
	}
	fmt.Fprintf(&sb, "precision: %d/%d confirmed (%.2f)\n",
		r.Confirmed(), len(r.Results), r.Precision())
	return sb.String()
}

// ValidateOptions tunes the dynamic replay.
type ValidateOptions struct {
	// Base is the VA the code is mapped at; it must leave the low data
	// region (< 0x90000) free. 0 means 0x400000.
	Base uint64
	// Runs is the number of simulator runs per mistraining schedule
	// (training runs plus the probe run). 0 means 6.
	Runs int
	// MaxInsts caps retired instructions per run. 0 means 20000.
	MaxInsts uint64
}

func (o ValidateOptions) withDefaults() ValidateOptions {
	if o.Base == 0 {
		o.Base = 0x400000
	}
	if o.Runs == 0 {
		o.Runs = 6
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 20000
	}
	return o
}

// ValidateAll replays every finding and returns the aggregate report.
func ValidateAll(code []byte, findings []Finding, opts ValidateOptions) Report {
	var r Report
	for _, f := range findings {
		r.Results = append(r.Results, Validate(code, f, opts))
	}
	return r
}

// dataTop bounds the low RW region the validator maps for data accesses;
// loaded garbage values masked into small ranges stay inside it.
const dataTop = 0x90000

// scratchVA is the canonical data pointer handed to address-carrying input
// registers; it sits inside the mapped low region with room on both sides.
const scratchVA = 0x10000

// Validate replays one finding through the pipeline simulator under a set of
// mistraining schedules and classifies it.
//
// The replay maps the code at opts.Base and a zero-initialized (or
// pointer-filled) RW region over the low addresses, derives input register
// values from how each register is used on the entry grid (memory bases get
// a scratch pointer, pure multiplier operands get 1, branch conditions get
// the schedule's per-run value), and runs the program repeatedly so the
// branch predictor and SSBP/PSFP see a training phase before the probe run.
//
// A finding is confirmed when a run shows dynamic evidence of the leak:
//
//   - STL: a type-G (bypass rollback) or type-D (wrong PSF forward) event
//     for exactly the finding's store/load instruction pair, and a transient
//     execution of the transmitter in the same run;
//   - CTL: a branch misprediction in the run plus transient executions of
//     both the chain's first load and the transmitter.
func Validate(code []byte, f Finding, opts ValidateOptions) Validation {
	opts = opts.withDefaults()
	v := Validation{Finding: f, Detail: "no transient execution of the transmitter observed"}

	entry := f.SourceOff % isa.InstBytes
	profile := regProfile(code, entry)

	for _, sched := range schedules(f.Kind, opts.Runs) {
		m := newDynMachine(code, opts.Base, sched.fill)
		txVA := opts.Base + uint64(f.TransmitOff)
		ld1VA := txVA // CTL chains always have a load; guard anyway
		if len(f.LoadOffs) > 0 {
			ld1VA = opts.Base + uint64(f.LoadOffs[0])
		}
		for run, cond := range sched.condVals {
			v.Runs++
			regs := profile.values(cond)
			mispredBefore := m.core.PMC().Get(pmc.BranchMispredicts)
			m.trace = m.trace[:0]
			res := m.core.Run(m.as, opts.Base+uint64(entry), &regs, opts.MaxInsts)

			switch f.Kind {
			case KindSTL:
				if m.stlEvidence(f, opts.Base, res) && m.transientAt(txVA) {
					v.Verdict, v.Confirmed = VerdictConfirmed, true
					v.Detail = fmt.Sprintf(
						"bypass event on store@+%#x/ld1@+%#x and transient transmitter (run %d, fill=%#x, cond=%d)",
						f.SourceOff, f.LoadOffs[0], run+1, sched.fill, cond)
					return v
				}
			case KindCTL:
				mispred := m.core.PMC().Get(pmc.BranchMispredicts) - mispredBefore
				if mispred > 0 && m.transientAt(ld1VA) && m.transientAt(txVA) {
					v.Verdict, v.Confirmed = VerdictConfirmed, true
					v.Detail = fmt.Sprintf(
						"branch mispredict with transient ld1 and transmitter (run %d, fill=%#x, cond=%d)",
						run+1, sched.fill, cond)
					return v
				}
			}
		}
	}
	return v
}

// schedule is one mistraining plan: the memory fill pattern and the branch
// condition value for each run.
type schedule struct {
	fill     uint64
	condVals []uint64
}

func schedules(kind Kind, runs int) []schedule {
	repeat := func(v uint64, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	var out []schedule
	for _, fill := range []uint64{0, scratchVA} {
		switch kind {
		case KindSTL:
			// Condition registers are held constant; both directions are
			// tried so a gadget on either side of a guard executes.
			out = append(out,
				schedule{fill: fill, condVals: repeat(0, runs)},
				schedule{fill: fill, condVals: repeat(1, runs)})
		case KindCTL:
			// Train the branch one way, then flip it on the probe run.
			train0 := append(repeat(0, runs-1), 1)
			train1 := append(repeat(1, runs-1), 0)
			out = append(out,
				schedule{fill: fill, condVals: train0},
				schedule{fill: fill, condVals: train1})
		}
	}
	return out
}

// dynTracer subscribes the machine's trace buffer through the boxing-free
// obs.InstObserver fast path.
type dynTracer dynMachine

// HandleInst implements obs.InstObserver.
func (t *dynTracer) HandleInst(e *obs.InstEvent) { t.trace = append(t.trace, *e) }

// HandleEvent implements obs.Observer.
func (t *dynTracer) HandleEvent(e obs.Event) {
	if ie, ok := e.(obs.InstEvent); ok {
		t.trace = append(t.trace, ie)
	}
}

// dynMachine is a minimal single-address-space machine for replays.
type dynMachine struct {
	phys  *mem.Physical
	as    *mem.AddrSpace
	ch    *cache.Hierarchy
	unit  *predict.Unit
	core  *pipeline.Core
	trace []obs.InstEvent
}

func newDynMachine(code []byte, base, fill uint64) *dynMachine {
	m := &dynMachine{
		phys: mem.NewPhysical(),
		as:   mem.NewAddrSpace(),
		ch:   cache.New(cache.DefaultConfig()),
		unit: predict.NewUnit(predict.Config{Seed: 1}),
	}
	m.core = pipeline.New(pipeline.Config{}, m.phys, m.ch, m.unit, &pmc.Counters{})
	bus := obs.NewBus()
	m.core.AttachBus(bus, 0)
	bus.Subscribe((*dynTracer)(m), obs.Options{Classes: []obs.Class{obs.ClassInst}})

	// Low RW region for data: every pointerish register and every masked
	// secret-derived displacement lands somewhere in here.
	for va := uint64(0); va < dataTop; va += mem.PageSize {
		m.as.Map(va, m.phys.AllocFrame(), mem.PermRW)
	}
	if fill != 0 {
		for va := uint64(0); va+8 <= dataTop; va += 8 {
			pa, _ := m.as.Translate(va, mem.AccessWrite)
			m.phys.Write64(pa, fill)
		}
	}

	// Code pages.
	for off := uint64(0); off < uint64(len(code))+mem.PageSize-1; off += mem.PageSize {
		if _, ok := m.as.Lookup(base + off); !ok {
			m.as.Map(base+off, m.phys.AllocFrame(), mem.PermR|mem.PermX)
		}
	}
	for i, b := range code {
		pa, fault := m.as.Translate(base+uint64(i), mem.AccessRead)
		if fault != mem.FaultNone {
			panic("speccheck: code map translate failed")
		}
		m.phys.WriteBytes(pa, []byte{b})
	}
	return m
}

// transientAt reports whether the last run executed the instruction at va
// inside a transient window.
func (m *dynMachine) transientAt(va uint64) bool {
	for _, e := range m.trace {
		if e.Transient && e.PC == va {
			return true
		}
	}
	return false
}

// stlEvidence reports whether the run produced a misspeculated store-load
// event (bypass G or wrong forward D) for exactly the finding's pair.
func (m *dynMachine) stlEvidence(f Finding, base uint64, res pipeline.RunResult) bool {
	if len(f.LoadOffs) == 0 {
		return false
	}
	storeIPA, okS := m.ipaOf(base + uint64(f.SourceOff))
	ld1IPA, okL := m.ipaOf(base + uint64(f.LoadOffs[0]))
	if !okS || !okL {
		return false
	}
	for _, ev := range res.Stlds {
		// Only architectural-path events count: inside someone else's
		// transient episode the pairing store of an event is whatever was
		// youngest in the queue, so a transient G/D on this pair would
		// attribute another gadget's misspeculation to this finding.
		if !ev.Transient && (ev.Type == predict.TypeG || ev.Type == predict.TypeD) &&
			ev.StoreIPA == storeIPA && ev.LoadIPA == ld1IPA {
			return true
		}
	}
	return false
}

func (m *dynMachine) ipaOf(va uint64) (uint64, bool) {
	pa, fault := m.as.Translate(va, mem.AccessExec)
	return pa, fault == mem.FaultNone
}

// role classifies how an input register (read before written on the entry
// grid) is used, which decides the value the replay seeds it with.
type role uint8

const (
	roleNone    role = iota
	roleMul          // only ever a multiplier operand: seeded with 1
	roleScratch      // flows into addresses or data: seeded with scratchVA
	roleCond         // conditional-branch operand: seeded per schedule
)

type regRoles [isa.NumRegs]role

// regProfile scans the code linearly on the grid starting at entry and
// classifies every register that is read before being written.
func regProfile(code []byte, entry int) regRoles {
	var roles regRoles
	var written [isa.NumRegs]bool
	note := func(r isa.Reg, ro role) {
		if !written[r] && ro > roles[r] {
			roles[r] = ro
		}
	}
	for off := entry; off+isa.InstBytes <= len(code); off += isa.InstBytes {
		in := isa.Decode(code[off:])
		switch in.Op {
		case isa.LOAD, isa.CLFLUSH:
			note(in.Src1, roleScratch)
		case isa.STORE:
			note(in.Src1, roleScratch)
			note(in.Src2, roleScratch)
		case isa.JZ, isa.JNZ:
			note(in.Src1, roleCond)
		case isa.IMUL:
			note(in.Src1, roleMul)
			note(in.Src2, roleMul)
		case isa.SYSCALL, isa.HALT, isa.BAD:
			// No register roles worth seeding.
		default:
			srcs, n := in.SrcRegs()
			for i := 0; i < n; i++ {
				note(srcs[i], roleScratch)
			}
		}
		if in.WritesReg() {
			written[in.Dst] = true
		}
	}
	return roles
}

// values materializes the register file for one run.
func (r regRoles) values(cond uint64) [isa.NumRegs]uint64 {
	var regs [isa.NumRegs]uint64
	for i, ro := range r {
		switch ro {
		case roleMul:
			regs[i] = 1
		case roleScratch:
			regs[i] = scratchVA
		case roleCond:
			regs[i] = cond
		}
	}
	return regs
}
