package speccheck_test

import (
	"reflect"
	"testing"

	"zenspec/internal/speccheck"
)

// equivOptions is the matrix of analysis modes the equivalence properties run
// under: both kinds, each alone, byte-exact sliding, the legacy straight-line
// semantics, and tight window/budget bounds that force truncation paths.
var equivOptions = []speccheck.Options{
	{},
	{STL: true},
	{CTL: true},
	{Stride: 1},
	{StraightLine: true},
	{Window: 12},
	{MaxStates: 24},
	{Stride: 3, Window: 20, MaxStates: 100},
}

// TestSummaryEquivalenceShapes: the cache engine reproduces the whole-program
// engine exactly on every hand-built gadget shape in the test suite.
func TestSummaryEquivalenceShapes(t *testing.T) {
	shapes := map[string][]byte{
		"listing2":    listing2STL(),
		"branchy":     branchySTL(),
		"ctl":         ctlGadget(),
		"branchdense": branchDense(10),
	}
	for name, code := range shapes {
		for _, opts := range equivOptions {
			c := speccheck.NewCache()
			want := speccheck.AnalyzeAll(code, opts)
			if got := c.Analyze(code, opts); !reflect.DeepEqual(got, want) {
				t.Errorf("%s %+v: cold cache diverged\n got %+v\nwant %+v", name, opts, got, want)
			}
			if got := c.Analyze(code, opts); !reflect.DeepEqual(got, want) {
				t.Errorf("%s %+v: warm cache diverged\n got %+v\nwant %+v", name, opts, got, want)
			}
		}
	}
}

// TestSummaryEquivalenceRandom: the property holds on seeded pseudo-random
// programs, including warm replays and cross-seed cache reuse (the same cache
// serves every program, so block summaries and source entries interleave).
func TestSummaryEquivalenceRandom(t *testing.T) {
	c := speccheck.NewCache()
	for seed := int64(0); seed < 12; seed++ {
		code := speccheck.GenProgram(seed, 600)
		for _, opts := range equivOptions {
			want := speccheck.AnalyzeAll(code, opts)
			if got := c.Analyze(code, opts); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d %+v: cold diverged\n got %+v\nwant %+v", seed, opts, got, want)
			}
			if got := c.Analyze(code, opts); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d %+v: warm diverged", seed, opts)
			}
		}
	}
}

// FuzzSummaryEquivalence feeds arbitrary bytes to both engines; any
// divergence in findings or truncation is a bug in the summary composition.
func FuzzSummaryEquivalence(f *testing.F) {
	f.Add(listing2STL(), uint8(0))
	f.Add(branchySTL(), uint8(1))
	f.Add(ctlGadget(), uint8(2))
	f.Add(branchDense(6), uint8(3))
	f.Add(speccheck.GenProgram(1, 64), uint8(4))
	f.Fuzz(func(t *testing.T, code []byte, optSel uint8) {
		if len(code) > 4096 {
			code = code[:4096]
		}
		opts := equivOptions[int(optSel)%len(equivOptions)]
		want := speccheck.AnalyzeAll(code, opts)
		c := speccheck.NewCache()
		if got := c.Analyze(code, opts); !reflect.DeepEqual(got, want) {
			t.Fatalf("cold cache diverged under %+v\n got %+v\nwant %+v", opts, got, want)
		}
		if got := c.Analyze(code, opts); !reflect.DeepEqual(got, want) {
			t.Fatalf("warm cache diverged under %+v", opts)
		}
	})
}
