package speccheck

import (
	"zenspec/internal/isa"
	"zenspec/internal/speccheck/summary"
)

// findKey dedupes findings by speculation source and transmitter.
type findKey struct {
	kind    Kind
	src, tx int
}

// engine runs the always-mispredict taint dataflow for one analysis call.
// The abstract domain (per-register taint, witness chain, finite abstract
// store) and the per-instruction transfer function live in
// internal/speccheck/summary so that the whole-program walk below and the
// block-summary mode in cache.go share one semantics.
type engine struct {
	g        *CFG
	opts     Options
	findings []Finding
	seen     map[findKey]bool
	states   int
	// truncated is set when an exploration hit the MaxStates budget and
	// gave up with work still pending: findings may be incomplete.
	truncated bool

	// cache and blocks are set in summary mode (Cache.Analyze): the
	// content-addressed block-summary store and this call's offset->block
	// memo.
	cache  *Cache
	blocks map[int]*blockNode
}

// node is one pending exploration step: the instruction at off is steps
// instructions past the speculation source, entered with state st.
type node struct {
	off, steps int
	st         summary.State
}

// chainDepth returns the dependent-load chain depth a transmitter needs for
// a source kind: store → ld1 → ld2 → transmitter for STL (the Listing 2/3
// chain), branch → secret load → transmitter for CTL (the V1 shape).
func chainDepth(kind Kind) int {
	if kind == KindCTL {
		return 1
	}
	return 2
}

// explore walks the transient window opened by the source at src: the
// bypassed store (STL) or the mispredicted branch (CTL), reporting every
// reachable source → load-chain → transmitter witness. It reports whether
// the walk was truncated by the MaxStates budget.
func (e *engine) explore(kind Kind, src int) bool {
	required := chainDepth(kind)
	e.states = 0
	e.truncated = false
	visited := make(map[string]int)

	var stack []node
	push := func(off, steps int, st *summary.State) {
		if steps >= e.opts.Window {
			return
		}
		stack = append(stack, node{off: off, steps: steps, st: st.Clone()})
	}
	var empty summary.State
	if kind == KindCTL {
		// Always-mispredict: both directions are wrong-path continuations.
		for _, succ := range e.g.SuccOffs(src) {
			push(succ, 1, &empty)
		}
	} else {
		push(src+isa.InstBytes, 1, &empty)
	}

	for len(stack) > 0 {
		if e.states >= e.opts.MaxStates {
			e.truncated = true
			return true
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.off+isa.InstBytes > len(e.g.code) || n.off < 0 {
			continue
		}
		k := n.st.Key(n.off)
		if prev, ok := visited[k]; ok && prev <= n.steps {
			continue // already explored from here with at least as much window left
		}
		visited[k] = n.steps
		e.states++

		in := e.g.InstAt(n.off)
		st := &n.st
		switch summary.Step(in, st, n.off, required, e.opts.StraightLine) {
		case summary.End:
			continue
		case summary.Report:
			e.report(kind, src, st.Chain, n.off)
			continue
		case summary.Redirect:
			if e.opts.StraightLine {
				continue // legacy semantics: any redirect ends the window
			}
		case summary.Continue:
		}
		for _, succ := range e.g.SuccOffs(n.off) {
			push(succ, n.steps+1, st)
		}
	}
	return false
}

func (e *engine) report(kind Kind, src int, chain []int, tx int) {
	k := findKey{kind: kind, src: src, tx: tx}
	if e.seen[k] {
		return
	}
	e.seen[k] = true
	loads := append([]int(nil), chain...)
	e.findings = append(e.findings, Finding{
		Kind:        kind,
		SourceOff:   src,
		LoadOffs:    loads,
		TransmitOff: tx,
		Depth:       len(loads),
	})
}
