package speccheck

import (
	"sort"

	"zenspec/internal/isa"
)

// findKey dedupes findings by speculation source and transmitter.
type findKey struct {
	kind    Kind
	src, tx int
}

// memCell is one entry of the finite abstract store: the taint of the value
// last stored through [base+imm]. Addresses are tracked symbolically by their
// (base register, displacement) pair and invalidated when base is redefined.
type memCell struct {
	base  isa.Reg
	imm   int32
	taint uint8
}

// maxMemCells bounds the abstract store; the oldest cell is evicted first.
const maxMemCells = 8

// absState is the dataflow fact attached to one exploration path: per-register
// taint levels, the dependent-load chain built so far, and the abstract store.
// Taint level n means "derived from the n-th dependent load after the source".
type absState struct {
	reg   [isa.NumRegs]uint8
	chain []int
	mem   []memCell
}

func (s *absState) clone() absState {
	c := absState{reg: s.reg}
	c.chain = append([]int(nil), s.chain...)
	c.mem = append([]memCell(nil), s.mem...)
	return c
}

// setReg assigns a taint level and invalidates abstract-store cells whose
// symbolic base just changed meaning.
func (s *absState) setReg(r isa.Reg, lvl uint8) {
	s.reg[r] = lvl
	kept := s.mem[:0]
	for _, c := range s.mem {
		if c.base != r {
			kept = append(kept, c)
		}
	}
	s.mem = kept
}

// putCell records the taint stored through [base+imm].
func (s *absState) putCell(base isa.Reg, imm int32, taint uint8) {
	for i := range s.mem {
		if s.mem[i].base == base && s.mem[i].imm == imm {
			s.mem[i].taint = taint
			return
		}
	}
	if len(s.mem) == maxMemCells {
		copy(s.mem, s.mem[1:])
		s.mem = s.mem[:maxMemCells-1]
	}
	s.mem = append(s.mem, memCell{base: base, imm: imm, taint: taint})
}

// cellAt returns the recorded taint of the value reachable through
// [base+imm], if any.
func (s *absState) cellAt(base isa.Reg, imm int32) (uint8, bool) {
	for _, c := range s.mem {
		if c.base == base && c.imm == imm {
			return c.taint, true
		}
	}
	return 0, false
}

// key builds the canonical dedup key for the state at a given offset. Chain
// *length* (not the exact offsets) determines future behaviour, so states
// differing only in witness history merge.
func (s *absState) key(off int) string {
	buf := make([]byte, 0, 5+isa.NumRegs+len(s.mem)*6)
	buf = append(buf, byte(off), byte(off>>8), byte(off>>16), byte(off>>24), byte(len(s.chain)))
	buf = append(buf, s.reg[:]...)
	cells := append([]memCell(nil), s.mem...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].base != cells[j].base {
			return cells[i].base < cells[j].base
		}
		return cells[i].imm < cells[j].imm
	})
	for _, c := range cells {
		buf = append(buf, byte(c.base), byte(c.imm), byte(c.imm>>8), byte(c.imm>>16), byte(c.imm>>24), c.taint)
	}
	return string(buf)
}

// engine runs the always-mispredict taint dataflow for one Analyze call.
type engine struct {
	g        *CFG
	opts     Options
	findings []Finding
	seen     map[findKey]bool
	states   int
}

// node is one pending exploration step: the instruction at off is steps
// instructions past the speculation source, entered with state st.
type node struct {
	off, steps int
	st         absState
}

// explore walks the transient window opened by the source at src: the
// bypassed store (STL) or the mispredicted branch (CTL), reporting every
// reachable source → load-chain → transmitter witness.
func (e *engine) explore(kind Kind, src int) {
	required := 2 // store → ld1 → ld2 → transmitter, the Listing 2/3 chain
	if kind == KindCTL {
		required = 1 // branch → secret load → transmitter, the V1 shape
	}
	e.states = 0
	visited := make(map[string]int)

	var stack []node
	push := func(off, steps int, st *absState) {
		if steps >= e.opts.Window {
			return
		}
		stack = append(stack, node{off: off, steps: steps, st: st.clone()})
	}
	var empty absState
	if kind == KindCTL {
		// Always-mispredict: both directions are wrong-path continuations.
		for _, succ := range e.g.SuccOffs(src) {
			push(succ, 1, &empty)
		}
	} else {
		push(src+isa.InstBytes, 1, &empty)
	}

	for len(stack) > 0 {
		if e.states >= e.opts.MaxStates {
			return
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.off+isa.InstBytes > len(e.g.code) || n.off < 0 {
			continue
		}
		k := n.st.key(n.off)
		if prev, ok := visited[k]; ok && prev <= n.steps {
			continue // already explored from here with at least as much window left
		}
		visited[k] = n.steps
		e.states++

		in := e.g.InstAt(n.off)
		st := &n.st
		depth := len(st.chain)

		switch {
		case in.Op == isa.BAD, in.Op == isa.HALT, in.Op == isa.SYSCALL:
			// Terminal: the transient window cannot continue through these.
			continue

		case in.IsFence():
			// A fence serializes; the speculative chain dies here.
			continue

		case in.IsBranch():
			if e.opts.StraightLine {
				continue // legacy semantics: any redirect ends the window
			}
			for _, succ := range e.g.SuccOffs(n.off) {
				push(succ, n.steps+1, st)
			}
			continue

		case in.IsLoad():
			b := int(st.reg[in.Src1])
			switch {
			case b >= required && depth >= required:
				e.report(kind, src, st.chain, n.off)
				continue // the transmitter is the end of the witness
			case depth == 0:
				// The speculative load: for STL any load after the store may
				// bypass it; for CTL the first load in the shadow reads the
				// value the branch was guarding.
				st.chain = append(append([]int(nil), st.chain...), n.off)
				st.setReg(in.Dst, 1)
			case b >= depth && depth < required:
				// A load whose address derives from the chain deepens it.
				st.chain = append(append([]int(nil), st.chain...), n.off)
				st.setReg(in.Dst, uint8(depth+1))
			default:
				// An unrelated load: its destination carries whatever the
				// abstract store says was last written there (taint survives
				// a spill/reload round trip), otherwise it is clean.
				lvl := uint8(0)
				if !e.opts.StraightLine {
					if t, ok := st.cellAt(in.Src1, in.Imm); ok {
						lvl = t
					}
				}
				st.setReg(in.Dst, lvl)
			}

		case in.IsStore():
			if int(st.reg[in.Src1]) >= required && depth >= required {
				// A tainted-address store transmits just like a load: it
				// moves the secret into a cache-visible location.
				e.report(kind, src, st.chain, n.off)
				continue
			}
			if !e.opts.StraightLine {
				st.putCell(in.Src1, in.Imm, st.reg[in.Src2])
			}

		case in.Op == isa.CLFLUSH:
			if !e.opts.StraightLine && int(st.reg[in.Src1]) >= required && depth >= required {
				// Flushing a secret-indexed line is a transmitter too
				// (flush-based channels observe the displacement).
				e.report(kind, src, st.chain, n.off)
				continue
			}

		case in.WritesReg():
			st.setReg(in.Dst, propagated(in, st))
		}

		for _, succ := range e.g.SuccOffs(n.off) {
			push(succ, n.steps+1, st)
		}
	}
}

// propagated computes a register result's taint from its sources. Constants
// and timestamps are clean.
func propagated(in isa.Inst, st *absState) uint8 {
	switch in.Op {
	case isa.MOVI, isa.RDPRU:
		return 0
	}
	srcs, n := in.SrcRegs()
	var max uint8
	for i := 0; i < n; i++ {
		if l := st.reg[srcs[i]]; l > max {
			max = l
		}
	}
	return max
}

func (e *engine) report(kind Kind, src int, chain []int, tx int) {
	k := findKey{kind: kind, src: src, tx: tx}
	if e.seen[k] {
		return
	}
	e.seen[k] = true
	loads := append([]int(nil), chain...)
	e.findings = append(e.findings, Finding{
		Kind:        kind,
		SourceOff:   src,
		LoadOffs:    loads,
		TransmitOff: tx,
		Depth:       len(loads),
	})
}
