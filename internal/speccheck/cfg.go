package speccheck

import (
	"fmt"
	"sort"
	"strings"

	"zenspec/internal/isa"
)

// CFG is a control-flow graph over a byte buffer of machine code.
//
// Because the ISA allows instructions at any byte offset (the code-sliding
// placement of Section III-C), the graph is built at instruction granularity:
// a node is a byte offset, its fall-through successor is off+isa.InstBytes on
// the same grid, and a branch target — an absolute VA resolved against Base —
// may land on a different grid entirely. Basic blocks therefore may overlap
// byte ranges when two grids interleave; each block stays on one grid.
type CFG struct {
	code []byte
	// Base is the virtual address of code[0].
	Base uint64
	// Blocks lists the basic blocks reachable from the entry offsets, in
	// ascending start order.
	Blocks []Block

	blockAt map[int]int // block start offset -> Blocks index
}

// Block is one basic block: a maximal single-entry straight-line run of
// instructions on one byte grid.
type Block struct {
	// Start is the byte offset of the first instruction.
	Start int
	// Offsets holds the byte offset of every instruction in the block.
	Offsets []int
	// Succs are indices into CFG.Blocks of the control-flow successors.
	Succs []int
}

// End returns the byte offset one past the block's last instruction.
func (b Block) End() int { return b.Offsets[len(b.Offsets)-1] + isa.InstBytes }

// BuildCFG decodes code and builds the control-flow graph reachable from the
// given entry offsets (offset 0 when none are given). Invalid entries are
// ignored; conditional and unconditional branch targets discovered during the
// sweep become block leaders, wherever in the byte stream they land.
func BuildCFG(code []byte, base uint64, entries ...int) *CFG {
	g := &CFG{code: code, Base: base, blockAt: make(map[int]int)}
	if len(entries) == 0 {
		entries = []int{0}
	}

	// Pass 1: discover leaders with a worklist of sweep starting points.
	leaders := make(map[int]bool)
	work := make([]int, 0, len(entries))
	push := func(off int) {
		if off >= 0 && off+isa.InstBytes <= len(code) && !leaders[off] {
			leaders[off] = true
			work = append(work, off)
		}
	}
	for _, e := range entries {
		push(e)
	}
	swept := make(map[int]bool)
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		for off >= 0 && off+isa.InstBytes <= len(code) && !swept[off] {
			swept[off] = true
			in := g.InstAt(off)
			if in.IsBranch() {
				if t, ok := g.TargetOff(in); ok {
					push(t)
				}
				if in.Op != isa.JMP {
					push(off + isa.InstBytes)
				}
				break
			}
			if in.Op == isa.HALT || in.Op == isa.BAD {
				break
			}
			off += isa.InstBytes
		}
	}

	// Pass 2: lay out blocks between leaders and terminators.
	starts := make([]int, 0, len(leaders))
	for off := range leaders {
		starts = append(starts, off)
	}
	sort.Ints(starts)
	for _, s := range starts {
		blk := Block{Start: s}
		for off := s; off+isa.InstBytes <= len(code); off += isa.InstBytes {
			if off != s && leaders[off] {
				break // falls through into the next leader's block
			}
			blk.Offsets = append(blk.Offsets, off)
			in := g.InstAt(off)
			if in.IsBranch() || in.Op == isa.HALT || in.Op == isa.BAD {
				break
			}
		}
		if len(blk.Offsets) == 0 {
			continue
		}
		g.blockAt[s] = len(g.Blocks)
		g.Blocks = append(g.Blocks, blk)
	}

	// Pass 3: resolve successor edges.
	for i := range g.Blocks {
		blk := &g.Blocks[i]
		last := blk.Offsets[len(blk.Offsets)-1]
		for _, succ := range g.SuccOffs(last) {
			if j, ok := g.blockAt[succ]; ok {
				blk.Succs = append(blk.Succs, j)
			}
		}
	}
	return g
}

// InstAt decodes the instruction at byte offset off. Offsets without room
// for a full instruction decode to BAD (which terminates any path).
func (g *CFG) InstAt(off int) isa.Inst {
	if off < 0 || off+isa.InstBytes > len(g.code) {
		return isa.Inst{}
	}
	return isa.Decode(g.code[off:])
}

// TargetOff resolves a branch instruction's absolute target VA to a byte
// offset within the code buffer. ok is false when the target (or the
// instruction it would start) falls outside the buffer.
func (g *CFG) TargetOff(in isa.Inst) (int, bool) {
	t := uint64(uint32(in.Imm))
	if t < g.Base {
		return 0, false
	}
	off := int(t - g.Base)
	if off+isa.InstBytes > len(g.code) {
		return 0, false
	}
	return off, true
}

// SuccOffs returns the byte offsets control flow may continue at after the
// instruction at off: the branch target and/or the fall-through slot, both
// clipped to the buffer. Terminal instructions (HALT, BAD) have none.
func (g *CFG) SuccOffs(off int) []int {
	in := g.InstAt(off)
	var out []int
	fall := off + isa.InstBytes
	switch {
	case in.Op == isa.HALT || in.Op == isa.BAD:
		return nil
	case in.Op == isa.JMP:
		if t, ok := g.TargetOff(in); ok {
			out = append(out, t)
		}
		return out
	case isCondBranch(in):
		if fall+isa.InstBytes <= len(g.code) {
			out = append(out, fall)
		}
		if t, ok := g.TargetOff(in); ok {
			out = append(out, t)
		}
		return out
	default:
		if fall+isa.InstBytes <= len(g.code) {
			out = append(out, fall)
		}
		return out
	}
}

// BlockAt returns the index of the block starting at byte offset off, or -1.
func (g *CFG) BlockAt(off int) int {
	if i, ok := g.blockAt[off]; ok {
		return i
	}
	return -1
}

// String renders the graph for the CLI's -cfg dump: one line per block with
// its byte range, instruction listing and successor blocks.
func (g *CFG) String() string {
	var sb strings.Builder
	for i, blk := range g.Blocks {
		fmt.Fprintf(&sb, "block %d [+%#x, +%#x):", i, blk.Start, blk.End())
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " %d", s)
			}
		}
		sb.WriteByte('\n')
		for _, off := range blk.Offsets {
			fmt.Fprintf(&sb, "  +%#04x: %s\n", off, g.InstAt(off))
		}
	}
	return sb.String()
}
