package speccheck_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zenspec/internal/isa"
	"zenspec/internal/speccheck"
)

// checkEquivalent asserts that a cache run reproduces AnalyzeAll exactly.
func checkEquivalent(t *testing.T, c *speccheck.Cache, code []byte, opts speccheck.Options) {
	t.Helper()
	want := speccheck.AnalyzeAll(code, opts)
	got := c.Analyze(code, opts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cache result diverged\n got: %+v\nwant: %+v", got, want)
	}
}

func TestCacheWarmScanIsAllHits(t *testing.T) {
	code := speccheck.GenProgram(7, 2000)
	c := speccheck.NewCache()
	checkEquivalent(t, c, code, speccheck.Options{})
	cold := c.Stats()
	if cold.Sources == 0 || cold.SourceMisses != cold.Sources || cold.ProgramHits != 0 {
		t.Fatalf("cold scan stats = %+v", cold)
	}
	// A byte-identical re-scan is one program-level hit: the per-source
	// machinery is skipped entirely.
	checkEquivalent(t, c, code, speccheck.Options{})
	warm := c.Stats()
	if warm.ProgramHits != 1 {
		t.Errorf("warm scan program hits = %d, want 1", warm.ProgramHits)
	}
	if warm.Sources != cold.Sources || warm.StatesExplored != cold.StatesExplored {
		t.Errorf("warm scan reran per-source work: cold %+v warm %+v", cold, warm)
	}
	// A warm result must be isolated from caller mutation.
	res := c.Analyze(code, speccheck.Options{})
	if len(res.Findings) > 0 {
		res.Findings[0].SourceOff = -1
		if again := c.Analyze(code, speccheck.Options{}); again.Findings[0].SourceOff == -1 {
			t.Error("cached result aliases a previously returned one")
		}
	}
}

// TestCacheEditLocality: editing one instruction recomputes only the sources
// whose dependency closure covers it; everything else stays cached.
func TestCacheEditLocality(t *testing.T) {
	code := speccheck.GenProgram(11, 2000)
	c := speccheck.NewCache()
	res := c.Analyze(code, speccheck.Options{})
	if !reflect.DeepEqual(res, speccheck.AnalyzeAll(code, speccheck.Options{})) {
		t.Fatal("cold cache diverged")
	}
	if len(res.Findings) == 0 {
		t.Fatal("generated program has no findings to edit away")
	}
	cold := c.Stats()

	// NOP out one finding's transmitter: its source's closure must cover it
	// (the walk reached it), so at least that source recomputes — but only
	// sources whose windows span the slot may.
	f := res.Findings[len(res.Findings)/2]
	edited := append([]byte(nil), code...)
	isa.Inst{Op: isa.NOP}.Encode(edited[f.TransmitOff:])
	checkEquivalent(t, c, edited, speccheck.Options{})
	warm := c.Stats()

	misses := warm.SourceMisses - cold.SourceMisses
	if misses == 0 {
		t.Error("editing a transmitter invalidated nothing; the closure is unsound")
	}
	if total := warm.Sources - cold.Sources; misses > total/4 {
		t.Errorf("tail edit recomputed %d of %d sources; closures are far too coarse", misses, total)
	}
}

// TestCacheRelocationSharing: a gadget's cached result is keyed by content
// relative to the source, so the same bytes at a different position in a
// different program hit the cache — and the findings relocate correctly.
func TestCacheRelocationSharing(t *testing.T) {
	gadgetCode := listing2STL() // self-contained: ends in HALT, no branches
	pad := func(nops int) []byte {
		var out []byte
		var b [isa.InstBytes]byte
		isa.Inst{Op: isa.NOP}.Encode(b[:])
		for i := 0; i < nops; i++ {
			out = append(out, b[:]...)
		}
		return append(out, gadgetCode...)
	}
	prog1, prog2 := pad(4), pad(9)

	c := speccheck.NewCache()
	checkEquivalent(t, c, prog1, speccheck.Options{STL: true})
	before := c.Stats()
	checkEquivalent(t, c, prog2, speccheck.Options{STL: true})
	after := c.Stats()
	if hits := after.SourceHits - before.SourceHits; hits == 0 {
		t.Error("relocated gadget bytes missed the cache")
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	code := speccheck.GenProgram(3, 1500)

	c1, err := speccheck.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c1, code, speccheck.Options{})

	c2, err := speccheck.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c2, code, speccheck.Options{})
	st := c2.Stats()
	if st.ProgramHits != 1 || st.DiskHits != 1 {
		t.Errorf("reopened cache stats = %+v, want one program hit from disk", st)
	}
	if st.SourceMisses != 0 || st.StatesExplored != 0 {
		t.Errorf("reopened cache re-explored: %+v", st)
	}

	// The per-source entries persist too: an edited buffer misses the
	// program layer but still mostly hits source entries from disk.
	edited := append([]byte(nil), code...)
	isa.Inst{Op: isa.NOP}.Encode(edited[:])
	c3, err := speccheck.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c3, edited, speccheck.Options{})
	st3 := c3.Stats()
	if st3.ProgramHits != 0 || st3.SourceHits == 0 {
		t.Errorf("edited-buffer scan stats = %+v, want source-level disk hits", st3)
	}
}

// TestCacheCorruptionRecovery: flipping bytes in (or truncating) every cache
// file must never change results — corrupt entries read as misses, get
// recomputed, and are rewritten.
func TestCacheCorruptionRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	code := speccheck.GenProgram(5, 1200)

	c1, err := speccheck.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c1, code, speccheck.Options{})

	files, err := filepath.Glob(filepath.Join(dir, "*.sce"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files written (err=%v)", err)
	}
	for i, f := range files {
		switch i % 3 {
		case 0: // truncate mid-header
			os.WriteFile(f, []byte("SC"), 0o644)
		case 1: // flip a payload byte (framing survives, JSON does not)
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xff
			os.WriteFile(f, raw, 0o644)
		case 2: // replace wholesale with garbage
			os.WriteFile(f, []byte("garbage"), 0o644)
		}
	}

	c2, err := speccheck.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c2, code, speccheck.Options{})
	st := c2.Stats()
	if st.DiskHits != 0 || st.ProgramHits != 0 {
		t.Errorf("corrupt entries served hits: %+v", st)
	}
	if st.Sources == 0 || st.SourceMisses != st.Sources {
		t.Errorf("stats after corruption = %+v, want all misses", st)
	}

	// The recomputation healed the store.
	c3, err := speccheck.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c3, code, speccheck.Options{})
	if st := c3.Stats(); st.ProgramHits != 1 || st.DiskHits != 1 {
		t.Errorf("healed cache stats = %+v, want a program hit from disk", st)
	}
}

// TestCacheOptionsIsolation: results cached under one Options fingerprint
// must not leak into an analysis under another.
func TestCacheOptionsIsolation(t *testing.T) {
	code := speccheck.GenProgram(9, 1200)
	c := speccheck.NewCache()
	for _, opts := range []speccheck.Options{
		{},
		{Window: 16},
		{STL: true, StraightLine: true},
		{CTL: true},
		{MaxStates: 32},
	} {
		checkEquivalent(t, c, code, opts)
	}
}

func TestCacheTruncationCached(t *testing.T) {
	code := branchDense(10)
	opts := speccheck.Options{STL: true, MaxStates: 8}
	c := speccheck.NewCache()
	cold := c.Analyze(code, opts)
	warm := c.Analyze(code, opts)
	if cold.Truncated == 0 {
		t.Fatal("expected truncation under the tiny budget")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("truncation not replayed from cache: cold %+v, warm %+v", cold, warm)
	}
}
