package speccheck

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"sync"

	"zenspec/internal/isa"
	"zenspec/internal/speccheck/summary"
)

// Cache is the incremental analysis front end: Analyze through a Cache
// produces byte-identical results to the whole-program AnalyzeAll, but reuses
// prior work at three granularities:
//
//   - program level: a scan of a byte-identical buffer under the same options
//     replays the stored result after one hash of the buffer;
//   - source level: after an edit, only sources whose dependency closure (the
//     code their transient walk can reach, hashed with the analysis
//     fingerprint) covers the change recompute — and the closure keys are
//     relocation-stable, so shared gadget bytes hit across programs;
//   - block level: the explorations that do run compose content-addressed
//     per-block transfer summaries instead of re-walking instructions.
//
// A Cache is safe for concurrent use; analysis calls serialize.
type Cache struct {
	mu       sync.Mutex
	programs map[string]*Result
	sources  map[string]*sourceEntry
	disk     *summary.DirStore
	blocks   map[[sha256.Size]byte]*blockNode
	stats    CacheStats
}

// blockNode is one content-addressed basic block: its decoded instructions
// and the transfer summaries recorded so far, one per entry abstraction.
type blockNode struct {
	insts []isa.Inst
	sums  map[string]*summary.BlockSummary
}

// sourceEntry is one cached per-source result. All offsets are relative to
// the source so the entry relocates with its bytes.
type sourceEntry struct {
	Findings  []relFinding `json:"findings,omitempty"`
	Truncated bool         `json:"truncated,omitempty"`
}

// relFinding is a Finding with the source-relative offsets that the cache
// stores; Kind and SourceOff are implied by the lookup.
type relFinding struct {
	Loads []int `json:"loads"`
	Tx    int   `json:"tx"`
}

// CacheStats counts what a Cache did, for tests, telemetry and the CLI.
type CacheStats struct {
	// ProgramHits counts whole scans answered by a program-level entry (a
	// byte-identical buffer under identical options); such scans never reach
	// the per-source machinery at all.
	ProgramHits int
	// Sources is the number of speculation sources scanned.
	Sources int
	// SourceHits / SourceMisses split Sources by whether the per-source
	// result came from the cache or from a fresh exploration.
	SourceHits, SourceMisses int
	// DiskHits counts program and source hits served from the persistent
	// store rather than this process's memory.
	DiskHits int
	// BlockHits / BlockMisses count block-summary reuse during the
	// explorations that did run.
	BlockHits, BlockMisses int
	// StatesExplored totals the abstract states walked by cache misses;
	// a fully warm scan explores zero.
	StatesExplored int
}

// diskCacheCap bounds a persistent cache directory's entry count.
const diskCacheCap = 1 << 16

// NewCache returns an in-memory incremental analyzer cache.
func NewCache() *Cache {
	return &Cache{
		programs: make(map[string]*Result),
		sources:  make(map[string]*sourceEntry),
		blocks:   make(map[[sha256.Size]byte]*blockNode),
	}
}

// OpenCache returns an incremental cache backed by a persistent store at dir
// (created if needed), so warm scans survive process restarts. Disk failures
// degrade the cache, never the analysis.
func OpenCache(dir string) (*Cache, error) {
	ds, err := summary.NewDirStore(dir, diskCacheCap)
	if err != nil {
		return nil, err
	}
	c := NewCache()
	c.disk = ds
	return c, nil
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Analyze is AnalyzeAll through the cache: identical results, incremental
// cost. Every source is keyed by the content hash of its dependency closure;
// hits replay the stored relative findings, misses run the block-summary
// engine and populate the cache for next time.
func (c *Cache) Analyze(code []byte, opts Options) Result {
	opts = opts.Normalized()
	c.mu.Lock()
	defer c.mu.Unlock()

	pkey := programKey(code, opts)
	if res, ok := c.lookupProgram(pkey); ok {
		c.stats.ProgramHits++
		return res
	}

	// The engine only needs instruction decoding and successor resolution,
	// both independent of the block layout, so skip BuildCFG's block passes.
	g := &CFG{code: code, Base: opts.Base}
	e := &engine{
		g:      g,
		opts:   opts,
		seen:   make(map[findKey]bool),
		cache:  c,
		blocks: make(map[int]*blockNode),
	}
	fp := summary.Fingerprint{
		Window:       opts.Window,
		MaxStates:    opts.MaxStates,
		StraightLine: opts.StraightLine,
	}

	var res Result
	var keyer summary.Keyer
	for off := 0; off+isa.InstBytes <= len(code); off += opts.Stride {
		in := g.InstAt(off)
		var kind Kind
		switch {
		case opts.STL && in.IsStore():
			kind = KindSTL
		case opts.CTL && isCondBranch(in):
			kind = KindCTL
		default:
			continue
		}
		c.stats.Sources++

		cl := summary.CloseOver(code, opts.Base, off, opts.Window, opts.StraightLine)
		key := keyer.SourceKey(code, off, byte(kind), fp, cl)
		if ent, ok := c.lookupSource(key); ok {
			c.stats.SourceHits++
			for _, rf := range ent.Findings {
				loads := make([]int, len(rf.Loads))
				for i, l := range rf.Loads {
					loads[i] = off + l
				}
				e.findings = append(e.findings, Finding{
					Kind:        kind,
					SourceOff:   off,
					LoadOffs:    loads,
					TransmitOff: off + rf.Tx,
					Depth:       len(loads),
				})
			}
			if ent.Truncated {
				res.Truncated++
			}
			continue
		}
		c.stats.SourceMisses++

		before := len(e.findings)
		truncated := e.exploreSummary(kind, off)
		c.stats.StatesExplored += e.states
		if truncated {
			res.Truncated++
		}
		ent := &sourceEntry{Truncated: truncated}
		for _, f := range e.findings[before:] {
			loads := make([]int, len(f.LoadOffs))
			for i, l := range f.LoadOffs {
				loads[i] = l - off
			}
			ent.Findings = append(ent.Findings, relFinding{Loads: loads, Tx: f.TransmitOff - off})
		}
		c.storeSource(key, ent)
	}
	res.Findings = e.findings
	c.storeProgram(pkey, res)
	return res
}

// programKey content-addresses a whole analysis call: every normalized
// option that can change the result, plus the raw buffer.
func programKey(code []byte, opts Options) string {
	h := sha256.New()
	var buf [64]byte
	b := buf[:0]
	b = append(b, "zenspec/speccheck/program/v1"...)
	for _, v := range []uint64{
		uint64(opts.Window), uint64(opts.MaxStates), uint64(opts.Stride), opts.Base,
	} {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	flag := func(f bool) byte {
		if f {
			return 1
		}
		return 0
	}
	b = append(b, flag(opts.STL), flag(opts.CTL), flag(opts.StraightLine))
	h.Write(b)
	h.Write(code)
	return string(h.Sum(nil))
}

// copyResult deep-copies a result so cached entries and caller-visible
// results never alias.
func copyResult(r *Result) Result {
	out := Result{Truncated: r.Truncated}
	if r.Findings != nil {
		out.Findings = make([]Finding, len(r.Findings))
		for i, f := range r.Findings {
			f.LoadOffs = append([]int(nil), f.LoadOffs...)
			out.Findings[i] = f
		}
	}
	return out
}

// lookupProgram resolves a program key through the in-memory layer and the
// persistent store.
func (c *Cache) lookupProgram(key string) (Result, bool) {
	if res, ok := c.programs[key]; ok {
		return copyResult(res), true
	}
	if c.disk == nil {
		return Result{}, false
	}
	raw, ok := c.disk.Get(key)
	if !ok {
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return Result{}, false
	}
	c.stats.DiskHits++
	c.programs[key] = &res
	return copyResult(&res), true
}

// storeProgram records a whole-scan result in both layers.
func (c *Cache) storeProgram(key string, res Result) {
	cp := copyResult(&res)
	c.programs[key] = &cp
	if c.disk != nil {
		if raw, err := json.Marshal(&cp); err == nil {
			c.disk.Put(key, raw)
		}
	}
}

// lookupSource resolves a source key through the in-memory layer and then the
// persistent store. A disk entry that fails to parse is a miss (the store
// already discarded framing-level corruption; this guards the payload).
func (c *Cache) lookupSource(key string) (*sourceEntry, bool) {
	if ent, ok := c.sources[key]; ok {
		return ent, true
	}
	if c.disk == nil {
		return nil, false
	}
	raw, ok := c.disk.Get(key)
	if !ok {
		return nil, false
	}
	var ent sourceEntry
	if err := json.Unmarshal(raw, &ent); err != nil {
		return nil, false
	}
	c.stats.DiskHits++
	c.sources[key] = &ent
	return &ent, true
}

// storeSource records a freshly computed per-source result in both layers.
func (c *Cache) storeSource(key string, ent *sourceEntry) {
	c.sources[key] = ent
	if c.disk != nil {
		if raw, err := json.Marshal(ent); err == nil {
			c.disk.Put(key, raw)
		}
	}
}

// blockFor resolves the basic block starting at off: a per-call offset memo
// in front of the cache-wide content-hash store, so blocks with equal bytes
// share their summaries across positions, calls, and programs.
func (e *engine) blockFor(off int) *blockNode {
	if bn, ok := e.blocks[off]; ok {
		return bn
	}
	insts := summary.ScanBlock(e.g.code, off)
	h := summary.HashBlock(e.g.code, off, len(insts))
	bn := e.cache.blocks[h]
	if bn == nil {
		bn = &blockNode{insts: insts, sums: make(map[string]*summary.BlockSummary)}
		e.cache.blocks[h] = bn
	}
	e.blocks[off] = bn
	return bn
}

// blockSummary returns the block's transfer summary for the entry abstraction
// of st, recording it on first use.
func (e *engine) blockSummary(off int, st *summary.State, required int) *summary.BlockSummary {
	bn := e.blockFor(off)
	ek := summary.EntryKey(st, required, e.opts.StraightLine)
	if s, ok := bn.sums[ek]; ok {
		e.cache.stats.BlockHits++
		return s
	}
	s := summary.Record(bn.insts, st, required, e.opts.StraightLine)
	bn.sums[ek] = s
	e.cache.stats.BlockMisses++
	return s
}

// exploreSummary is explore composed from block summaries instead of
// instruction steps. It replays, per recorded step, exactly the bookkeeping
// the instruction-level walk performs — the push-time window guard, the
// pop-time MaxStates check, the visited-set probe and the state count — in
// the same order, so findings, truncation and even the exploration order are
// identical to explore's. (The LIFO walk processes a straight-line run
// contiguously, which is what makes block-granular replay order-preserving.)
func (e *engine) exploreSummary(kind Kind, src int) bool {
	required := chainDepth(kind)
	e.states = 0
	e.truncated = false
	visited := make(map[string]int)

	var stack []node
	push := func(off, steps int, st *summary.State) {
		if steps >= e.opts.Window {
			return
		}
		stack = append(stack, node{off: off, steps: steps, st: st.Clone()})
	}
	var empty summary.State
	if kind == KindCTL {
		for _, succ := range e.g.SuccOffs(src) {
			push(succ, 1, &empty)
		}
	} else {
		push(src+isa.InstBytes, 1, &empty)
	}

	for len(stack) > 0 {
		if e.states >= e.opts.MaxStates {
			e.truncated = true
			return true
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.off+isa.InstBytes > len(e.g.code) || n.off < 0 {
			continue
		}
		sum := e.blockSummary(n.off, &n.st, required)
		chain := n.st.Chain
		died := false
		for i, rec := range sum.Steps {
			stepsI := n.steps + i
			if i > 0 {
				// Instruction i would have been pushed with stepsI and
				// popped next: replay the push-time window guard, then the
				// pop-time budget check.
				if stepsI >= e.opts.Window {
					died = true
					break
				}
				if e.states >= e.opts.MaxStates {
					e.truncated = true
					return true
				}
			}
			off := n.off + i*isa.InstBytes
			k := summary.PatchKey(off, rec.KeySuffix)
			if prev, ok := visited[k]; ok && prev <= stepsI {
				died = true
				break
			}
			visited[k] = stepsI
			e.states++
			if rec.Report {
				e.report(kind, src, chain, off)
				died = true
				break
			}
			if rec.Append {
				chain = append(append([]int(nil), chain...), off)
			}
		}
		if died || sum.End == summary.EndDead {
			continue
		}
		last := n.off + (len(sum.Steps)-1)*isa.InstBytes
		exit := summary.State{Reg: sum.ExitReg, Chain: chain, Mem: sum.ExitMem}
		for _, succ := range e.g.SuccOffs(last) {
			push(succ, n.steps+len(sum.Steps), &exit)
		}
	}
	return false
}
