package speccheck

import (
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
)

func TestBuildCFGLinear(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.RAX, 1)
	b.Addi(isa.RAX, isa.RAX, 2)
	b.Halt()
	g := BuildCFG(b.MustAssemble(0), 0)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1\n%s", len(g.Blocks), g)
	}
	blk := g.Blocks[0]
	if len(blk.Offsets) != 3 || blk.Start != 0 || blk.End() != 3*isa.InstBytes {
		t.Errorf("block shape wrong: %+v", blk)
	}
	if len(blk.Succs) != 0 {
		t.Errorf("terminal block has successors: %v", blk.Succs)
	}
}

func TestBuildCFGDiamond(t *testing.T) {
	// entry: jz → (then | else) → join
	b := asm.NewBuilder()
	b.Jz(isa.RAX, "else")
	b.Movi(isa.RBX, 1) // then
	b.Jmp("join")
	b.Label("else")
	b.Movi(isa.RBX, 2)
	b.Label("join")
	b.Halt()
	g := BuildCFG(b.MustAssemble(0), 0)
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", len(g.Blocks), g)
	}
	entry := g.Blocks[g.BlockAt(0)]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry successors = %v, want 2\n%s", entry.Succs, g)
	}
	join := g.BlockAt(4 * isa.InstBytes)
	if join < 0 {
		t.Fatal("join block not found")
	}
	// Both arms must flow into join.
	arms := 0
	for i, blk := range g.Blocks {
		if i == join {
			continue
		}
		for _, s := range blk.Succs {
			if s == join {
				arms++
			}
		}
	}
	if arms != 2 {
		t.Errorf("join has %d predecessors, want 2\n%s", arms, g)
	}
}

// TestBuildCFGByteOffsetTarget: a branch target at a non-slot-aligned byte
// offset opens a block on its own grid — the code-sliding placement.
func TestBuildCFGByteOffsetTarget(t *testing.T) {
	const base = 0x1000
	code := make([]byte, 3*isa.InstBytes+4)
	// +0: jmp base+12 (not a multiple of 8 from base)
	isa.Inst{Op: isa.JMP, Imm: base + 12}.Encode(code[0:])
	// +12: halt, on the shifted grid.
	isa.Inst{Op: isa.HALT}.Encode(code[12:])
	g := BuildCFG(code, base)
	tgt := g.BlockAt(12)
	if tgt < 0 {
		t.Fatalf("no block at byte offset 12\n%s", g)
	}
	entry := g.Blocks[g.BlockAt(0)]
	if len(entry.Succs) != 1 || entry.Succs[0] != tgt {
		t.Errorf("entry succs = %v, want [%d]", entry.Succs, tgt)
	}
	if got := g.InstAt(12).Op; got != isa.HALT {
		t.Errorf("inst at 12 = %v, want halt", got)
	}
}

func TestSuccOffs(t *testing.T) {
	b := asm.NewBuilder()
	b.Jnz(isa.RAX, "out") // +0: succs = fall-through +8 and target +16
	b.Nop()               // +8: succ = +16
	b.Label("out")
	b.Halt() // +16: no succs
	g := BuildCFG(b.MustAssemble(0), 0)
	if s := g.SuccOffs(0); len(s) != 2 || s[0] != 8 || s[1] != 16 {
		t.Errorf("branch succs = %v, want [8 16]", s)
	}
	if s := g.SuccOffs(8); len(s) != 1 || s[0] != 16 {
		t.Errorf("nop succs = %v, want [16]", s)
	}
	if s := g.SuccOffs(16); len(s) != 0 {
		t.Errorf("halt succs = %v, want none", s)
	}
}

func TestTargetOffOutOfRange(t *testing.T) {
	b := asm.NewBuilder()
	b.JmpAbs(0x999999) // far outside the buffer
	b.Halt()
	g := BuildCFG(b.MustAssemble(0), 0)
	if _, ok := g.TargetOff(g.InstAt(0)); ok {
		t.Error("out-of-range target resolved")
	}
	if s := g.SuccOffs(0); len(s) != 0 {
		t.Errorf("unresolvable jmp has succs %v", s)
	}
}
