package speccheck_test

import (
	"math"
	"strings"
	"testing"

	"zenspec/internal/asm"
	"zenspec/internal/isa"
	"zenspec/internal/speccheck"
)

// stlConfirmable emits a dynamically real STL gadget in the Fig 8 shape: the
// store address resolves through a long multiply chain, the load aliases it
// (every pointer register is seeded with the same scratch address), and the
// dependent chain stays inside the validator's mapped low region by masking
// each loaded value before using it as an index.
func stlConfirmable(b *asm.Builder) (store, ld1, ld2, tx int) {
	b.Movi(isa.R12, 1)
	b.Mov(isa.RBX, isa.RDI)
	for i := 0; i < 24; i++ {
		b.Imul(isa.RBX, isa.RBX, isa.R12) // slow address generation
	}
	store = b.Offset()
	b.Store(isa.RBX, 0, isa.R9)
	ld1 = b.Offset()
	b.Load(isa.RDX, isa.RSI, 0) // aliases the store; bypasses it
	b.Andi(isa.RDX, isa.RDX, 0x3f)
	b.Shli(isa.RDX, isa.RDX, 3)
	b.Add(isa.RDX, isa.RDX, isa.RBP)
	ld2 = b.Offset()
	b.Load(isa.R8, isa.RDX, 0)
	b.Andi(isa.R8, isa.R8, 0x3f)
	b.Shli(isa.R8, isa.R8, 6)
	b.Add(isa.R8, isa.R8, isa.RBP)
	tx = b.Offset()
	b.Load(isa.R10, isa.R8, 0)
	return
}

// stlOverApprox emits a statically identical chain whose store and load can
// never alias (disjoint displacements off the same scratch pointer), so no
// replay produces a bypass event.
func stlOverApprox(b *asm.Builder) (store int) {
	store = b.Offset()
	b.Store(isa.RBX, 0x2000, isa.R9)
	b.Load(isa.RDX, isa.RSI, 0)
	b.Andi(isa.RDX, isa.RDX, 0x3f)
	b.Add(isa.RDX, isa.RDX, isa.RBP)
	b.Load(isa.R8, isa.RDX, 0)
	b.Andi(isa.R8, isa.R8, 0x3f)
	b.Add(isa.R8, isa.R8, isa.RBP)
	b.Load(isa.R10, isa.R8, 0)
	return
}

func TestValidateConfirmsSTL(t *testing.T) {
	b := asm.NewBuilder()
	store, ld1, _, tx := stlConfirmable(b)
	b.Halt()
	code := b.MustAssemble(0)

	findings := speccheck.Analyze(code, speccheck.Options{STL: true})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	f := findings[0]
	if f.SourceOff != store || f.LoadOffs[0] != ld1 || f.TransmitOff != tx {
		t.Fatalf("finding %+v does not match the emitted gadget", f)
	}
	v := speccheck.Validate(code, f, speccheck.ValidateOptions{})
	if v.Verdict != speccheck.VerdictConfirmed || !v.Confirmed {
		t.Fatalf("verdict = %v (%s), want confirmed", v.Verdict, v.Detail)
	}
	if v.Runs == 0 {
		t.Error("no simulator runs recorded")
	}
	if !strings.Contains(v.Detail, "bypass event") {
		t.Errorf("detail = %q, want bypass evidence", v.Detail)
	}
}

func TestValidateConfirmsCTL(t *testing.T) {
	// The guard condition comes from memory and resolves through a multiply
	// chain, so the misprediction window is wide. With the pointer-filled
	// memory schedule the branch is taken for the first time with untrained
	// counters — a guaranteed mispredict whose wrong path is the leak body.
	b := asm.NewBuilder()
	b.Load(isa.R11, isa.RDI, 0)
	b.Movi(isa.R12, 1)
	for i := 0; i < 12; i++ {
		b.Imul(isa.R11, isa.R11, isa.R12)
	}
	branch := b.Offset()
	b.Jnz(isa.R11, "out")
	ld1 := b.Offset()
	b.Load(isa.RDX, isa.RSI, 0)
	b.Andi(isa.RDX, isa.RDX, 0x3f)
	b.Shli(isa.RDX, isa.RDX, 6)
	b.Add(isa.RDX, isa.RDX, isa.RBP)
	tx := b.Offset()
	b.Load(isa.R8, isa.RDX, 0)
	b.Label("out")
	b.Halt()
	code := b.MustAssemble(0)

	findings := speccheck.Analyze(code, speccheck.Options{CTL: true})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	f := findings[0]
	if f.SourceOff != branch || f.LoadOffs[0] != ld1 || f.TransmitOff != tx {
		t.Fatalf("finding %+v does not match the emitted gadget", f)
	}
	v := speccheck.Validate(code, f, speccheck.ValidateOptions{})
	if v.Verdict != speccheck.VerdictConfirmed || !v.Confirmed {
		t.Fatalf("verdict = %v (%s), want confirmed", v.Verdict, v.Detail)
	}
	if !strings.Contains(v.Detail, "mispredict") {
		t.Errorf("detail = %q, want misprediction evidence", v.Detail)
	}
}

func TestValidateOverApproximation(t *testing.T) {
	b := asm.NewBuilder()
	stlOverApprox(b)
	b.Halt()
	code := b.MustAssemble(0)

	findings := speccheck.Analyze(code, speccheck.Options{STL: true})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	v := speccheck.Validate(code, findings[0], speccheck.ValidateOptions{})
	if v.Verdict != speccheck.VerdictOverApprox || v.Confirmed {
		t.Fatalf("verdict = %v (%s), want over-approximation", v.Verdict, v.Detail)
	}
	if v.Runs == 0 {
		t.Error("over-approximation verdict reached without any simulator runs")
	}
}

// TestValidateAllClassifies runs the full differential loop on a program
// containing one real and one unrealizable gadget: every static finding gets
// a verdict and the report's precision reflects the split.
func TestValidateAllClassifies(t *testing.T) {
	b := asm.NewBuilder()
	realStore, _, _, _ := stlConfirmable(b)
	fakeStore := stlOverApprox(b)
	b.Halt()
	code := b.MustAssemble(0)

	findings := speccheck.Analyze(code, speccheck.Options{STL: true})
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want 2", findings)
	}
	rep := speccheck.ValidateAll(code, findings, speccheck.ValidateOptions{})
	if len(rep.Results) != len(findings) {
		t.Fatalf("classified %d of %d findings", len(rep.Results), len(findings))
	}
	for _, v := range rep.Results {
		switch v.Finding.SourceOff {
		case realStore:
			if v.Verdict != speccheck.VerdictConfirmed {
				t.Errorf("real gadget not confirmed: %s", v.Detail)
			}
		case fakeStore:
			if v.Verdict != speccheck.VerdictOverApprox {
				t.Errorf("unrealizable gadget confirmed: %s", v.Detail)
			}
		default:
			t.Errorf("finding with unexpected source %#x", v.Finding.SourceOff)
		}
	}
	if rep.Confirmed() != 1 {
		t.Errorf("confirmed = %d, want 1", rep.Confirmed())
	}
	if got := rep.Precision(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("precision = %v, want 0.5", got)
	}
	if s := rep.String(); !strings.Contains(s, "precision: 1/2") {
		t.Errorf("report string missing precision line:\n%s", s)
	}
}

func TestReportPrecisionEmpty(t *testing.T) {
	var rep speccheck.Report
	if rep.Precision() != 1 {
		t.Errorf("empty report precision = %v, want 1", rep.Precision())
	}
}
