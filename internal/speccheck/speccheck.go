// Package speccheck is a static analyzer for speculative-leak gadgets in
// micro-ISA machine code, paired with a dynamic validator that replays its
// findings through the cycle-level pipeline simulator.
//
// The analyzer generalizes the straight-line taint walk of internal/gadget
// into a dataflow analysis over a control-flow graph, run under an
// always-mispredict speculative semantics in the style of the compositional
// speculative-leak detectors in the literature:
//
//   - every store is assumed bypassable: a younger load may transiently read
//     the stale memory value (Spectre-STL via an SSBP/PSFP misprediction);
//   - every conditional branch is assumed mispredicted: both successors are
//     explored as transient continuations (Spectre-CTL's branch-shadow
//     windows);
//   - taint propagates through registers and a finite abstract store, so a
//     transient value spilled to memory and reloaded keeps its taint.
//
// A finding is a witness chain source → dependent loads → transmitter, where
// the source is a bypassed store (STL) or a mispredicted conditional branch
// (CTL) and the transmitter is a memory access whose address depends on the
// speculatively obtained value — the shape of the paper's Listings 2 and 3.
//
// Static findings over-approximate: the analyzer cannot know whether a store
// address really resolves late or whether the predictors can be mistrained.
// Validate replays each finding on internal/pipeline with the predictors
// mistrained and classifies it as confirmed (a transient execution of the
// transmitter was observed) or as an over-approximation.
package speccheck

import (
	"encoding/json"
	"fmt"
	"strings"

	"zenspec/internal/isa"
)

// DefaultWindow is the default transient-window reach in instructions, the
// ROB distance the gadget scanner has always assumed (48, the Zen 3 store
// queue depth). internal/gadget aliases this constant so the two analyzers
// cannot drift.
const DefaultWindow = 48

// Kind classifies the speculation primitive a finding relies on.
type Kind uint8

// Finding kinds.
const (
	// KindSTL is a store-bypass leak: a store whose address may resolve
	// late, a load that can transiently read stale data past it, and a
	// dependent chain transmitting that data (Spectre-STL).
	KindSTL Kind = iota
	// KindCTL is a branch-shadow leak: a conditional branch whose
	// misprediction window contains a load feeding the address of a second
	// memory access (Spectre-CTL / Spectre-V1 shape).
	KindCTL
)

func (k Kind) String() string {
	switch k {
	case KindSTL:
		return "stl"
	case KindCTL:
		return "ctl"
	}
	return fmt.Sprintf("kind?%d", uint8(k))
}

// MarshalJSON renders the kind as its short name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the short name form.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "stl":
		*k = KindSTL
	case "ctl":
		*k = KindCTL
	default:
		return fmt.Errorf("speccheck: unknown kind %q", s)
	}
	return nil
}

// Finding is one leak candidate with its instruction-offset witness chain.
type Finding struct {
	Kind Kind `json:"kind"`
	// SourceOff is the byte offset of the speculation source: the bypassed
	// store (STL) or the mispredicted conditional branch (CTL).
	SourceOff int `json:"source_off"`
	// LoadOffs are the byte offsets of the dependent-load chain, in order:
	// the speculative load first, then each load whose address derives from
	// the previous one.
	LoadOffs []int `json:"load_offs"`
	// TransmitOff is the byte offset of the transmitter: the memory access
	// whose address carries the speculative value into the cache state.
	TransmitOff int `json:"transmit_off"`
	// Depth is the dependent-load chain length (len(LoadOffs)).
	Depth int `json:"depth"`
}

// Chain returns the full witness chain: source, dependent loads, transmitter.
func (f Finding) Chain() []int {
	c := make([]int, 0, len(f.LoadOffs)+2)
	c = append(c, f.SourceOff)
	c = append(c, f.LoadOffs...)
	return append(c, f.TransmitOff)
}

func (f Finding) String() string {
	var sb strings.Builder
	src := "store"
	if f.Kind == KindCTL {
		src = "branch"
	}
	fmt.Fprintf(&sb, "%s: %s@+%#x", f.Kind, src, f.SourceOff)
	for i, off := range f.LoadOffs {
		fmt.Fprintf(&sb, "  ld%d@+%#x", i+1, off)
	}
	fmt.Fprintf(&sb, "  transmit@+%#x", f.TransmitOff)
	return sb.String()
}

// Options tunes Analyze.
type Options struct {
	// Window is the maximum instruction distance from the source to the
	// transmitter (a transient window's reach). 0 means DefaultWindow.
	Window int
	// Base is the virtual address of code[0]; branch targets (absolute VAs
	// in the encoding) are resolved against it.
	Base uint64
	// STL and CTL select which source kinds to analyze. Both false means
	// both (the zero Options value analyzes everything).
	STL, CTL bool
	// Stride is the byte step between scanned source slots. 0 means
	// isa.InstBytes (the aligned grid); 1 scans every byte offset, matching
	// the paper's code-sliding placement where a gadget may live on any of
	// the eight instruction grids.
	Stride int
	// StraightLine reproduces the legacy internal/gadget semantics: the
	// walk is linear from the source, any control flow ends the window, and
	// taint does not propagate through memory. internal/gadget.Scan runs
	// the engine in this mode.
	StraightLine bool
	// MaxStates bounds the abstract states explored per source before the
	// walk gives up (termination backstop for branchy code). 0 means 16384.
	MaxStates int
}

// defaultMaxStates is the per-source exploration budget when Options leaves
// MaxStates unset.
const defaultMaxStates = 16384

// Normalized resolves every defaulting and consistency rule of Options, so
// that two Options values describing the same analysis compare (and cache)
// equal:
//
//   - Window, Stride and MaxStates treat any value <= 0 as "unset" and clamp
//     to their defaults. A zero or negative stride would otherwise make the
//     source scan loop forever (or run backwards), and a negative window or
//     state budget would silently scan nothing.
//   - STL and CTL both false selects both kinds (the zero Options value
//     analyzes everything).
//   - StraightLine forces STL-only: a straight-line walk has no branch
//     windows, so CTL is meaningless there. In particular StraightLine with
//     CTL-only falls back to scanning STL rather than silently analyzing
//     nothing — the footgun the previous defaulting logic had.
//
// Analyze and Cache.Analyze both normalize first; callers only need this to
// inspect what an Options value will actually do.
func (o Options) Normalized() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Stride <= 0 {
		o.Stride = isa.InstBytes
	}
	if o.MaxStates <= 0 {
		o.MaxStates = defaultMaxStates
	}
	if !o.STL && !o.CTL {
		o.STL, o.CTL = true, true
	}
	if o.StraightLine {
		o.STL, o.CTL = true, false
	}
	return o
}

// Result is a full analysis outcome: the findings plus how trustworthy they
// are as an over-approximation.
type Result struct {
	// Findings are the leak candidates in source order, deduplicated by
	// (kind, source, transmitter).
	Findings []Finding `json:"findings"`
	// Truncated counts the sources whose exploration hit the MaxStates
	// budget and gave up with paths still pending. A nonzero value means
	// the findings may be incomplete for branch-dense code; raise
	// Options.MaxStates to trade time for completeness.
	Truncated int `json:"truncated"`
}

// Analyze scans code for speculative-leak candidates under the
// always-mispredict semantics and returns the findings in source order,
// deduplicated by (kind, source, transmitter). Use AnalyzeAll to also learn
// whether any exploration was truncated by the MaxStates budget.
func Analyze(code []byte, opts Options) []Finding {
	return AnalyzeAll(code, opts).Findings
}

// AnalyzeAll is Analyze plus the truncation count (see Result.Truncated).
func AnalyzeAll(code []byte, opts Options) Result {
	opts = opts.Normalized()
	g := BuildCFG(code, opts.Base)
	e := &engine{g: g, opts: opts, seen: make(map[findKey]bool)}
	var res Result
	for off := 0; off+isa.InstBytes <= len(code); off += opts.Stride {
		in := g.InstAt(off)
		var hit bool
		switch {
		case opts.STL && in.IsStore():
			hit = e.explore(KindSTL, off)
		case opts.CTL && isCondBranch(in):
			hit = e.explore(KindCTL, off)
		}
		if hit {
			res.Truncated++
		}
	}
	res.Findings = e.findings
	return res
}

func isCondBranch(in isa.Inst) bool { return in.Op == isa.JZ || in.Op == isa.JNZ }
