package ml

import (
	"math/rand"
	"testing"
)

// gaussianBlobs builds a separable multi-class dataset.
func gaussianBlobs(r *rand.Rand, classes, perClass, dim int, spread float64) ([][]float64, []int) {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = r.Float64() * 10
		}
	}
	var x [][]float64
	var y []int
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = centers[c][d] + r.NormFloat64()*spread
			}
			x = append(x, v)
			y = append(y, c)
		}
	}
	return x, y
}

func TestSVMSeparableBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x, y := gaussianBlobs(r, 4, 40, 8, 0.5)
	m, err := Train(x, y, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.98 {
		t.Errorf("train accuracy %.3f on separable data", acc)
	}
	// Held-out samples from the same distribution.
	xt, yt := gaussianBlobs(rand.New(rand.NewSource(2)), 4, 10, 8, 0.5)
	_ = xt
	_ = yt
}

func TestSVMGeneralizes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x, y := gaussianBlobs(r, 3, 60, 6, 0.8)
	m, err := Train(x[:120], y[:120], 3, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Note: the tail 60 samples are all class 2 with this construction, so
	// build a proper held-out set instead.
	xt, yt := gaussianBlobs(rand.New(rand.NewSource(8)), 3, 20, 6, 0.8)
	// Centers differ across seeds, so retrain on a split of one dataset.
	xs, ys := gaussianBlobs(rand.New(rand.NewSource(9)), 3, 40, 6, 0.6)
	var trainX, testX [][]float64
	var trainY, testY []int
	for i := range xs {
		if i%4 == 0 {
			testX = append(testX, xs[i])
			testY = append(testY, ys[i])
		} else {
			trainX = append(trainX, xs[i])
			trainY = append(trainY, ys[i])
		}
	}
	m, err = Train(trainX, trainY, 3, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(testX, testY); acc < 0.9 {
		t.Errorf("held-out accuracy %.3f", acc)
	}
	_ = xt
	_ = yt
}

func TestSVMErrors(t *testing.T) {
	if _, err := Train(nil, nil, 2, Options{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []int{0, 1}, 2, Options{}); err == nil {
		t.Error("ragged features should error")
	}
	if _, err := Train([][]float64{{1}, {2}}, []int{0, 5}, 2, Options{}); err == nil {
		t.Error("out-of-range label should error")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, 2, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSVMDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x, y := gaussianBlobs(r, 2, 30, 4, 0.5)
	m1, _ := Train(x, y, 2, Options{Seed: 11})
	m2, _ := Train(x, y, 2, Options{Seed: 11})
	for i := range x {
		if m1.Predict(x[i]) != m2.Predict(x[i]) {
			t.Fatal("same seed must give identical models")
		}
	}
	if m1.Classes() != 2 {
		t.Error("Classes")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &SVM{weights: [][]float64{{0}}, bias: []float64{0}, classes: 1}
	if m.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}
