// Package ml provides a small pure-Go multi-class linear SVM (one-vs-rest,
// Pegasos-style stochastic subgradient training), standing in for the
// paper's sklearn classifier in the Fig 11 fingerprinting experiment.
package ml

import (
	"fmt"
	"math/rand"
)

// SVM is a trained one-vs-rest linear classifier.
type SVM struct {
	weights [][]float64 // one weight vector per class
	bias    []float64
	classes int
}

// Options configures training.
type Options struct {
	Epochs int     // passes over the data (default 60)
	Lambda float64 // regularization (default 0.01)
	Seed   int64
}

// Train fits a one-vs-rest linear SVM on feature vectors x with labels
// y ∈ [0, classes).
func Train(x [][]float64, y []int, classes int, opts Options) (*SVM, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: bad training set: %d samples, %d labels", len(x), len(y))
	}
	dim := len(x[0])
	for i, v := range x {
		if len(v) != dim {
			return nil, fmt.Errorf("ml: sample %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	for i, c := range y {
		if c < 0 || c >= classes {
			return nil, fmt.Errorf("ml: label %d out of range at sample %d", c, i)
		}
	}
	if opts.Epochs == 0 {
		opts.Epochs = 60
	}
	if opts.Lambda == 0 {
		opts.Lambda = 0.01
	}
	m := &SVM{
		weights: make([][]float64, classes),
		bias:    make([]float64, classes),
		classes: classes,
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	order := rng.Perm(len(x))
	for c := 0; c < classes; c++ {
		w := make([]float64, dim)
		var b float64
		t := 1
		for epoch := 0; epoch < opts.Epochs; epoch++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				label := -1.0
				if y[i] == c {
					label = 1.0
				}
				eta := 1.0 / (opts.Lambda * float64(t))
				t++
				margin := label * (dot(w, x[i]) + b)
				for d := range w {
					w[d] *= 1 - eta*opts.Lambda
				}
				if margin < 1 {
					for d := range w {
						w[d] += eta * label * x[i][d]
					}
					b += eta * label
				}
			}
		}
		m.weights[c] = w
		m.bias[c] = b
	}
	return m, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Predict returns the most confident class for x.
func (m *SVM) Predict(x []float64) int {
	best, bestScore := 0, dot(m.weights[0], x)+m.bias[0]
	for c := 1; c < m.classes; c++ {
		if s := dot(m.weights[c], x) + m.bias[c]; s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Classes returns the number of classes.
func (m *SVM) Classes() int { return m.classes }

// Accuracy scores the classifier on a labeled set.
func (m *SVM) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}
