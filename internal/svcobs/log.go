package svcobs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log formats accepted by NewLogger (the -log-format flag of zenspecd and
// zenspec-worker).
const (
	FormatText = "text"
	FormatJSON = "json"
)

// ParseLevel maps a -log-level flag value onto a slog.Level. Accepted values
// are debug, info, warn and error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("svcobs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the service logger: format is "text" (the slog text
// handler, one key=value line per record) or "json" (one JSON object per
// line, every line independently parseable — the contract the verify.sh
// smoke asserts), level is as ParseLevel. The zero values ("", "") mean text
// at info.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", FormatText:
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("svcobs: unknown log format %q (want text or json)", format)
}
