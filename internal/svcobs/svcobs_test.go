package svcobs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"", slog.LevelInfo},
		{"debug", slog.LevelDebug},
		{"INFO", slog.LevelInfo},
		{"warn", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{" error ", slog.LevelError},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatalf("ParseLevel(loud) accepted")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, FormatJSON, "info")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("lease claimed", "job", "j1", "shard", "fig2[0:8)", "attempt", 1)
	lg.Debug("hidden")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 line (debug filtered), got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("json log line does not parse: %v", err)
	}
	if rec["msg"] != "lease claimed" || rec["job"] != "j1" {
		t.Fatalf("unexpected record: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "worker", "w1")
	if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "worker=w1") {
		t.Fatalf("text handler output unexpected: %q", buf.String())
	}

	if _, err := NewLogger(&buf, "yaml", ""); err == nil {
		t.Fatal("NewLogger accepted bad format")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("NewLogger accepted bad level")
	}
}

func TestHubNilSafety(t *testing.T) {
	var h *Hub
	if h.Enabled() {
		t.Fatal("nil hub enabled")
	}
	// Must not panic, and must be usable.
	h.Logger().Info("dropped")
	h.Metrics().Inc("x_total", 1)
	h.Traces().Add(Span{Trace: "t", Actor: "a", Name: "n"})
	if h.Metrics().Counter("x_total", "") != 0 {
		t.Fatal("nil hub collected a counter")
	}
	if h.Traces().Len("t") != 0 {
		t.Fatal("nil hub collected a span")
	}

	on := New(nil)
	if !on.Enabled() {
		t.Fatal("New hub not enabled")
	}
	on.Logger().Info("also dropped")
	on.Metrics().Inc("x_total", 2)
	if on.Metrics().Counter("x_total", "") != 2 {
		t.Fatal("enabled hub lost a counter")
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("shards_completed_total", "Shards completed.")
	r.Inc("shards_completed_total", 3)
	r.IncL("shards_completed_total", Label("exp", "fig2"), 2)
	r.Describe("shard_wall_ms", "Shard wall-clock.")
	r.ObserveL("shard_wall_ms", Label("exp", "fig2"), 7)
	r.ObserveL("shard_wall_ms", Label("exp", "fig2"), 120)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP zenspec_service_shards_completed_total Shards completed.",
		"# TYPE zenspec_service_shards_completed_total counter",
		"zenspec_service_shards_completed_total 3",
		`zenspec_service_shards_completed_total{exp="fig2"} 2`,
		"# TYPE zenspec_service_shard_wall_ms histogram",
		`zenspec_service_shard_wall_ms_bucket{exp="fig2",le="10"} 1`,
		`zenspec_service_shard_wall_ms_bucket{exp="fig2",le="250"} 2`,
		`zenspec_service_shard_wall_ms_bucket{exp="fig2",le="+Inf"} 2`,
		`zenspec_service_shard_wall_ms_sum{exp="fig2"} 127`,
		`zenspec_service_shard_wall_ms_count{exp="fig2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if r.HistCount("shard_wall_ms", Label("exp", "fig2")) != 2 {
		t.Fatal("HistCount wrong")
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("exp", "a\"b\\c\nd")
	want := `exp="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

func TestStableSnapshotDeterministicAndVolatile(t *testing.T) {
	build := func(order []float64) *Registry {
		r := NewRegistry()
		r.MarkVolatile("fsync_ms", "journal_rotations_total")
		r.Inc("shards_completed_total", 5)
		r.Inc("journal_rotations_total", 2) // volatile counter: excluded
		for _, v := range order {
			r.ObserveL("shard_wall_ms", Label("exp", "fig2"), v)
			r.Observe("fsync_ms", v) // volatile histogram: excluded
		}
		return r
	}
	a := build([]float64{1, 900, 33})
	b := build([]float64{4000, 2, 2}) // same counts, wildly different values
	if !bytes.Equal(a.StableSnapshot(), b.StableSnapshot()) {
		t.Fatalf("stable snapshots differ:\n%s--\n%s", a.StableSnapshot(), b.StableSnapshot())
	}
	snap := string(a.StableSnapshot())
	if strings.Contains(snap, "fsync_ms") || strings.Contains(snap, "journal_rotations_total") {
		t.Fatalf("volatile series leaked into stable snapshot:\n%s", snap)
	}
	for _, want := range []string{"shards_completed_total 5", `shard_wall_ms_count{exp="fig2"} 3`} {
		if !strings.Contains(snap, want) {
			t.Fatalf("stable snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestTraceLogPerfetto(t *testing.T) {
	tl := NewTraceLog()
	start := time.Unix(1000, 0)
	tl.Span("tr1", ActorDaemon, "jobs", "job j1", start, 5*time.Second, map[string]any{"job": "j1"})
	tl.Span("tr1", ActorDaemon, "fig2[0:8)", "queue-wait", start, 100*time.Millisecond, nil)
	tl.Span("tr1", ActorWorker("w1"), "fig2[0:8)", "run fig2[0:8)", start.Add(time.Second), 2*time.Second, nil)
	tl.Add(Span{Trace: "tr1", Actor: ActorWorker("w1"), Track: "fig2[0:8)", Name: "trials", Phase: "i", StartUS: start.Add(2 * time.Second).UnixMicro()})
	tl.Add(Span{Trace: "other", Actor: ActorDaemon, Name: "x", StartUS: 1})
	tl.Add(Span{Actor: ActorDaemon, Name: "no trace id"}) // dropped

	if tl.Len("tr1") != 4 {
		t.Fatalf("Len = %d, want 4", tl.Len("tr1"))
	}

	raw, err := tl.Perfetto("tr1")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("Perfetto output is not JSON: %v", err)
	}
	var procNames []string
	minTS := int64(1 << 60)
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
		if ev.Phase == "M" && ev.Name == "process_name" {
			procNames = append(procNames, ev.Args["name"].(string))
		}
		if ev.Phase != "M" && ev.TS < minTS {
			minTS = ev.TS
		}
	}
	if len(procNames) != 2 || procNames[0] != ActorDaemon || procNames[1] != ActorWorker("w1") {
		t.Fatalf("process metadata wrong: %v", procNames)
	}
	if minTS != 0 {
		t.Fatalf("timestamps not normalized to origin: min ts = %d", minTS)
	}
	for _, want := range []string{"job j1", "queue-wait", "run fig2[0:8)", "trials"} {
		if !seen[want] {
			t.Fatalf("trace missing event %q", want)
		}
	}
	// Spans from the other trace must not leak in.
	if seen["x"] {
		t.Fatal("foreign trace event leaked")
	}

	if _, err := tl.Perfetto("nope"); err == nil {
		t.Fatal("Perfetto accepted unknown trace")
	}
	tl.Drop("tr1")
	if tl.Len("tr1") != 0 {
		t.Fatal("Drop left spans behind")
	}
}

func TestTraceLogBounds(t *testing.T) {
	tl := NewTraceLog()
	for i := 0; i < maxTraces+3; i++ {
		tl.Add(Span{Trace: string(rune('a'+i%26)) + "-" + string(rune('0'+i/26)), Actor: "a", Name: "n"})
	}
	tl.mu.Lock()
	n := len(tl.traces)
	tl.mu.Unlock()
	if n != maxTraces {
		t.Fatalf("retained %d traces, want %d", n, maxTraces)
	}
}
