package svcobs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prefix is the Prometheus namespace every Registry series is exported
// under: a metric registered as "shards_completed_total" scrapes as
// zenspec_service_shards_completed_total.
const Prefix = "zenspec_service_"

// histBounds are the histogram bucket upper bounds. Values are host
// milliseconds for the *_ms latency series; the dimensionless series (watch
// fan-out) reuse them as plain counts. The range spans a sub-millisecond
// journal fsync to a multi-minute shard.
var histBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 300000}

// hist is one cumulative histogram series.
type hist struct {
	count   uint64
	sum     float64
	max     float64
	buckets []uint64 // len(histBounds)+1, +Inf last
}

func newHist() *hist { return &hist{buckets: make([]uint64, len(histBounds)+1)} }

func (h *hist) observe(v float64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	i := sort.SearchFloat64s(histBounds, v)
	h.buckets[i]++
}

// Registry is the service metrics registry: monotonic counters and
// cumulative histograms, optionally labeled, with Prometheus text exposition.
// All methods are safe for concurrent use and no-ops on a nil receiver.
//
// Series carrying host wall-clock values are inherently nondeterministic;
// MarkVolatile excludes a series (its values always, its very presence and
// count too) from StableSnapshot, the deterministic view the cross-worker
// identity tests compare.
type Registry struct {
	mu       sync.Mutex
	counters map[string]map[string]uint64
	hists    map[string]map[string]*hist
	help     map[string]string
	volatile map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]map[string]uint64{},
		hists:    map[string]map[string]*hist{},
		help:     map[string]string{},
		volatile: map[string]bool{},
	}
}

// Label renders one label pair for the labels argument of IncL/ObserveL,
// escaping the value per the Prometheus text format.
func Label(key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(value) + `"`
}

// Describe attaches HELP text to a metric name (shown on /metrics).
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// MarkVolatile excludes the named metric from StableSnapshot: its counts are
// functions of host timing (heartbeat races, journal segment boundaries),
// not of the job's deterministic execution.
func (r *Registry) MarkVolatile(names ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, n := range names {
		r.volatile[n] = true
	}
	r.mu.Unlock()
}

// Inc adds n to the unlabeled counter series of name.
func (r *Registry) Inc(name string, n uint64) { r.IncL(name, "", n) }

// IncL adds n to the counter series of name with the given label set
// (rendered by Label, comma-joined for multiple pairs; "" means unlabeled).
func (r *Registry) IncL(name, labels string, n uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.counters[name]
	if s == nil {
		s = map[string]uint64{}
		r.counters[name] = s
	}
	s[labels] += n
	r.mu.Unlock()
}

// Observe records v in the unlabeled histogram series of name.
func (r *Registry) Observe(name string, v float64) { r.ObserveL(name, "", v) }

// ObserveL records v in the histogram series of name with the given labels.
func (r *Registry) ObserveL(name, labels string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.hists[name]
	if s == nil {
		s = map[string]*hist{}
		r.hists[name] = s
	}
	h := s[labels]
	if h == nil {
		h = newHist()
		s[labels] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Counter returns the counter series' current value (0 when absent, or on a
// nil registry).
func (r *Registry) Counter(name, labels string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name][labels]
}

// HistCount returns the histogram series' observation count.
func (r *Registry) HistCount(name, labels string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name][labels]; h != nil {
		return h.count
	}
	return 0
}

func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func bucketSeries(name, labels, le string) string {
	l := `le="` + le + `"`
	if labels != "" {
		l = labels + "," + l
	}
	return name + "_bucket{" + l + "}"
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the registry as Prometheus text exposition, every
// name under the zenspec_service_ prefix, sorted for a stable scrape layout.
// It is the collector the daemon mounts on prof.Telemetry's /metrics.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		full := Prefix + n
		if h := r.help[n]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", full, h)
		}
		fmt.Fprintf(w, "# TYPE %s counter\n", full)
		lsets := make([]string, 0, len(r.counters[n]))
		for l := range r.counters[n] {
			lsets = append(lsets, l)
		}
		sort.Strings(lsets)
		for _, l := range lsets {
			fmt.Fprintf(w, "%s %d\n", series(full, l), r.counters[n][l])
		}
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		full := Prefix + n
		if h := r.help[n]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", full, h)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", full)
		lsets := make([]string, 0, len(r.hists[n]))
		for l := range r.hists[n] {
			lsets = append(lsets, l)
		}
		sort.Strings(lsets)
		for _, l := range lsets {
			h := r.hists[n][l]
			var cum uint64
			for i, b := range histBounds {
				cum += h.buckets[i]
				fmt.Fprintf(w, "%s %d\n", bucketSeries(full, l, fmtFloat(b)), cum)
			}
			cum += h.buckets[len(histBounds)]
			fmt.Fprintf(w, "%s %d\n", bucketSeries(full, l, "+Inf"), cum)
			fmt.Fprintf(w, "%s %s\n", series(full+"_sum", l), fmtFloat(h.sum))
			fmt.Fprintf(w, "%s %d\n", series(full+"_count", l), h.count)
		}
	}
}

// StableSnapshot renders the deterministic projection of the registry as
// sorted "series value" lines: every non-volatile counter, and every
// non-volatile histogram's observation *count* — never its sum, max or
// bucket tallies, which hold host wall-clock values. Two runs of the same
// deterministic job produce byte-identical stable snapshots at any worker
// count; the cross-worker tests compare exactly this.
func (r *Registry) StableSnapshot() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, s := range r.counters {
		if r.volatile[n] {
			continue
		}
		for l, v := range s {
			lines = append(lines, fmt.Sprintf("%s %d", series(n, l), v))
		}
	}
	for n, s := range r.hists {
		if r.volatile[n] {
			continue
		}
		for l, h := range s {
			lines = append(lines, fmt.Sprintf("%s %d", series(n+"_count", l), h.count))
		}
	}
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n") + "\n")
}
