// Package svcobs is the service-plane observability layer: distributed
// tracing, wall-clock metrics and structured logging for the zenspecd job
// lifecycle. Where internal/obs watches the *simulated machine* (cycles,
// predictors, squashes) with deterministic, report-grade registries, svcobs
// watches the *service around it* — queue waits, lease round-trips, shard
// wall-clocks, journal fsyncs — in host time, strictly off the report path:
// nothing here ever feeds back into a Report, so job StableJSON is
// byte-identical with observability on or off.
//
// The three planes share one correlation ID, minted per job at submission,
// journaled with the job, and propagated to remote workers in every lease:
//
//   - Traces: a TraceLog of wall-clock spans on per-actor tracks (the daemon
//     plus every worker that touched the job), exported as Chrome
//     trace-event JSON — the same Perfetto format internal/obs uses for
//     simulated cycles — so one trace shows queue wait, lease latency, shard
//     execution, retry backoff and journal fsyncs side by side.
//   - Metrics: a Registry of counters and histograms with Prometheus text
//     exposition under the zenspec_service_* namespace, mounted on the
//     daemon's existing /metrics endpoint.
//   - Logs: log/slog structured logging with consistent job/shard/lease/
//     worker/attempt/trace fields, selectable text or JSON handlers.
//
// All collection types are nil-safe: every method on a nil *Registry,
// *TraceLog or *Hub is a no-op, so a disabled observability plane costs one
// nil check per call site — the internal/obs zero-cost-when-disabled
// discipline, applied to the service.
package svcobs

import (
	"io"
	"log/slog"
)

// Hub bundles the three service-observability planes. A nil *Hub is the
// disabled plane: logging goes nowhere, metrics and traces collect nothing —
// the accessors below are all nil-safe, so call sites never branch.
type Hub struct {
	logger  *slog.Logger
	metrics *Registry
	traces  *TraceLog
}

// New returns an enabled hub collecting metrics and traces and logging
// through logger (nil logger discards).
func New(logger *slog.Logger) *Hub {
	if logger == nil {
		logger = Discard()
	}
	return &Hub{logger: logger, metrics: NewRegistry(), traces: NewTraceLog()}
}

// Logger returns the hub's logger; a nil hub (or one built without a logger)
// yields the discard logger, so callers never nil-check before logging.
func (h *Hub) Logger() *slog.Logger {
	if h == nil || h.logger == nil {
		return Discard()
	}
	return h.logger
}

// Metrics returns the hub's registry (nil on a nil hub; the nil registry is
// itself a no-op collector).
func (h *Hub) Metrics() *Registry {
	if h == nil {
		return nil
	}
	return h.metrics
}

// Traces returns the hub's trace log (nil on a nil hub; the nil log is a
// no-op collector).
func (h *Hub) Traces() *TraceLog {
	if h == nil {
		return nil
	}
	return h.traces
}

// Enabled reports whether the hub collects anything.
func (h *Hub) Enabled() bool { return h != nil }

// discard is the shared no-op logger behind Discard.
var discard = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// Discard returns a logger that drops everything, for code paths that want
// an always-valid *slog.Logger.
func Discard() *slog.Logger { return discard }
