package svcobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Span is one wall-clock trace record, the wire unit of distributed tracing:
// remote workers record the spans of their shard attempts and ship them back
// to the daemon in the lease-completion body, where they stitch into the
// job's trace by correlation ID. Timestamps are host microseconds since the
// Unix epoch — daemon and workers each stamp their own clock, which is what
// lets one timeline interleave both sides.
type Span struct {
	// Trace is the job correlation ID the span belongs to, minted by the
	// daemon at submission and carried in every lease.
	Trace string `json:"trace"`
	// Actor names the process that produced the span ("zenspecd", or the
	// worker's reported name); each actor renders as its own Perfetto
	// process, so a distributed run reads as one track group per machine.
	Actor string `json:"actor"`
	// Track is the lane within the actor (a shard ID, "journal", "jobs");
	// empty means the actor's default lane.
	Track string `json:"track,omitempty"`
	Name  string `json:"name"`
	// Phase is the Chrome trace-event phase: "X" (complete, the default),
	// "B"/"E" (begin/end pairs for spans whose end is a later call), or "i"
	// (instant).
	Phase string `json:"ph,omitempty"`
	// StartUS is the span's start in Unix microseconds; DurUS its duration
	// (phase "X" only).
	StartUS int64          `json:"ts_us"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Args    map[string]any `json:"args,omitempty"`
}

// NowUS returns the current host time in Unix microseconds, the Span clock.
func NowUS() int64 { return time.Now().UnixMicro() }

// maxSpansPerTrace bounds one trace's buffer; past it new spans are counted
// as dropped rather than buffered, so a runaway job cannot eat the daemon.
const maxSpansPerTrace = 16384

// maxTraces bounds how many traces the log retains; adding a span for a new
// trace beyond it evicts the oldest trace wholesale (jobs are also dropped
// eagerly when archived).
const maxTraces = 64

// TraceLog accumulates spans per trace and renders each trace as Chrome
// trace-event JSON (the Perfetto format). Safe for concurrent use; all
// methods are no-ops on a nil receiver.
type TraceLog struct {
	mu      sync.Mutex
	traces  map[string][]Span
	order   []string
	dropped map[string]int
}

// NewTraceLog returns an empty trace log.
func NewTraceLog() *TraceLog {
	return &TraceLog{traces: map[string][]Span{}, dropped: map[string]int{}}
}

// Add appends spans to their traces. Spans with an empty Trace are ignored
// (a legacy journal's jobs have no correlation ID).
func (t *TraceLog) Add(spans ...Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range spans {
		if s.Trace == "" {
			continue
		}
		buf, ok := t.traces[s.Trace]
		if !ok {
			if len(t.order) >= maxTraces {
				oldest := t.order[0]
				t.order = t.order[1:]
				delete(t.traces, oldest)
				delete(t.dropped, oldest)
			}
			t.order = append(t.order, s.Trace)
		}
		if len(buf) >= maxSpansPerTrace {
			t.dropped[s.Trace]++
			continue
		}
		t.traces[s.Trace] = append(buf, s)
	}
}

// Span records a completed span.
func (t *TraceLog) Span(trace, actor, track, name string, start time.Time, dur time.Duration, args map[string]any) {
	t.Add(Span{Trace: trace, Actor: actor, Track: track, Name: name,
		Phase: "X", StartUS: start.UnixMicro(), DurUS: dur.Microseconds(), Args: args})
}

// Begin opens a span on a track; a later End with the same name closes it.
func (t *TraceLog) Begin(trace, actor, track, name string, args map[string]any) {
	t.Add(Span{Trace: trace, Actor: actor, Track: track, Name: name,
		Phase: "B", StartUS: NowUS(), Args: args})
}

// End closes the most recent open span of that name on the track.
func (t *TraceLog) End(trace, actor, track, name string, args map[string]any) {
	t.Add(Span{Trace: trace, Actor: actor, Track: track, Name: name,
		Phase: "E", StartUS: NowUS(), Args: args})
}

// Instant records a point event.
func (t *TraceLog) Instant(trace, actor, track, name string, args map[string]any) {
	t.Add(Span{Trace: trace, Actor: actor, Track: track, Name: name,
		Phase: "i", StartUS: NowUS(), Args: args})
}

// Drop discards a trace (called when its job is archived).
func (t *TraceLog) Drop(trace string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.traces[trace]; !ok {
		return
	}
	delete(t.traces, trace)
	delete(t.dropped, trace)
	for i, id := range t.order {
		if id == trace {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// Spans returns a copy of one trace's buffered spans (nil when unknown).
func (t *TraceLog) Spans(trace string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := t.traces[trace]
	if buf == nil {
		return nil
	}
	out := make([]Span, len(buf))
	copy(out, buf)
	return out
}

// Len returns the number of spans buffered for a trace.
func (t *TraceLog) Len(trace string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces[trace])
}

// traceEvent mirrors the Chrome trace-event JSON object (the same shape
// internal/obs emits for simulated cycles; redeclared here to keep the
// wall-clock plane dependency-free of the simulation observer).
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Perfetto renders one trace as Chrome trace-event JSON, loadable in
// ui.perfetto.dev: one Perfetto "process" per actor (the daemon pinned
// first), one "thread" per track within it, timestamps in real microseconds.
// Unknown traces return an error.
func (t *TraceLog) Perfetto(trace string) ([]byte, error) {
	spans := t.Spans(trace)
	if spans == nil {
		return nil, fmt.Errorf("svcobs: unknown trace %q", trace)
	}
	// Normalize timestamps to the trace's own origin so the viewer opens at
	// t=0 instead of the Unix epoch.
	origin := spans[0].StartUS
	for _, s := range spans {
		if s.StartUS < origin {
			origin = s.StartUS
		}
	}

	// Stable actor ordering: "zenspecd" first, then everyone else sorted.
	actorTracks := map[string]map[string]bool{}
	for _, s := range spans {
		if actorTracks[s.Actor] == nil {
			actorTracks[s.Actor] = map[string]bool{}
		}
		actorTracks[s.Actor][s.Track] = true
	}
	actors := make([]string, 0, len(actorTracks))
	for a := range actorTracks {
		actors = append(actors, a)
	}
	sort.Slice(actors, func(i, j int) bool {
		if (actors[i] == ActorDaemon) != (actors[j] == ActorDaemon) {
			return actors[i] == ActorDaemon
		}
		return actors[i] < actors[j]
	})
	pid := map[string]int{}
	tid := map[string]map[string]int{}
	var out []traceEvent
	meta := func(p, tr int, kind, name string) traceEvent {
		return traceEvent{Name: kind, Phase: "M", PID: p, TID: tr,
			Args: map[string]any{"name": name}}
	}
	for i, a := range actors {
		pid[a] = i + 1
		out = append(out, meta(i+1, 0, "process_name", a))
		tracks := make([]string, 0, len(actorTracks[a]))
		for tr := range actorTracks[a] {
			tracks = append(tracks, tr)
		}
		sort.Strings(tracks)
		tid[a] = map[string]int{}
		for j, tr := range tracks {
			tid[a][tr] = j
			name := tr
			if name == "" {
				name = a
			}
			out = append(out, meta(i+1, j, "thread_name", name))
		}
	}

	evs := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		ph := s.Phase
		if ph == "" {
			ph = "X"
		}
		te := traceEvent{
			Name: s.Name, Phase: ph, TS: s.StartUS - origin, Dur: s.DurUS,
			PID: pid[s.Actor], TID: tid[s.Actor][s.Track], Args: s.Args,
		}
		if ph == "i" {
			te.Scope = "t"
		}
		evs = append(evs, te)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	out = append(out, evs...)

	return json.MarshalIndent(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{out, "ms"}, "", " ")
}

// ActorDaemon is the daemon's span actor name, pinned as the first Perfetto
// process so the scheduling side always tops the trace.
const ActorDaemon = "zenspecd"

// ActorWorker renders a worker's span actor name.
func ActorWorker(name string) string { return "worker:" + name }
