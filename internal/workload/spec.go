package workload

import (
	"fmt"
	"strings"

	"zenspec/internal/asm"
	"zenspec/internal/harness"
	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
)

// SpecKernel is a synthetic stand-in for one SPECrate 2017 benchmark. The
// knobs that matter for the SSBD study are the density of store→load
// sequences whose store address resolves late (SSBD serializes exactly
// those) relative to independent compute.
type SpecKernel struct {
	Name string
	// Pairs is the number of store-load pairs per loop iteration.
	Pairs int
	// AliasEvery makes every n-th pair aliasing (0 = none): aliasing pairs
	// stall with and without SSBD, diluting the overhead.
	AliasEvery int
	// Delay is the multiply-chain length in front of each store address.
	Delay int
	// Compute is the number of independent ALU ops per iteration.
	Compute int
	// Iterations of the main loop.
	Iterations int
	// PointerChase adds a serial dependent-load chain per iteration
	// (memory-latency-bound code, insensitive to SSBD).
	PointerChase int
}

// SpecKernels returns the ten SPECrate benchmarks evaluated in Fig 12,
// parameterized so that the store-to-load-heavy ones (perlbench, exchange2)
// suffer the >20% SSBD penalty the paper reports while compute- and
// memory-bound ones stay in the single digits.
func SpecKernels() []SpecKernel {
	return []SpecKernel{
		{Name: "perlbench", Pairs: 6, AliasEvery: 0, Delay: 8, Compute: 170, Iterations: 160},
		{Name: "gcc", Pairs: 3, AliasEvery: 3, Delay: 6, Compute: 170, Iterations: 160},
		{Name: "mcf", Pairs: 2, AliasEvery: 0, Delay: 5, Compute: 110, Iterations: 120, PointerChase: 3},
		{Name: "omnetpp", Pairs: 2, AliasEvery: 2, Delay: 6, Compute: 150, Iterations: 160},
		{Name: "xalancbmk", Pairs: 3, AliasEvery: 4, Delay: 6, Compute: 160, Iterations: 160},
		{Name: "x264", Pairs: 1, AliasEvery: 0, Delay: 4, Compute: 200, Iterations: 160},
		{Name: "deepsjeng", Pairs: 2, AliasEvery: 3, Delay: 6, Compute: 160, Iterations: 160},
		{Name: "leela", Pairs: 2, AliasEvery: 0, Delay: 5, Compute: 140, Iterations: 160},
		{Name: "exchange2", Pairs: 7, AliasEvery: 0, Delay: 8, Compute: 190, Iterations: 160},
		{Name: "xz", Pairs: 2, AliasEvery: 0, Delay: 6, Compute: 110, Iterations: 160},
	}
}

// Build assembles the kernel. The program expects R15 = data base (at least
// 4 pages mapped) and runs to HALT. Store addresses are produced by a load
// plus a short dependent ALU chain — the pattern (indexing through a table,
// then storing) that makes SSBD expensive on real code, without saturating
// the multiply port.
func (k SpecKernel) Build(base uint64) []byte {
	b := asm.NewBuilder()
	b.Movi(isa.R14, int32(k.Iterations))
	b.Movi(isa.R9, 0x77) // store data
	b.Label("loop")
	// Serial compute chain: the kernel's critical path when SSBD is off.
	for i := 0; i < k.Compute; i++ {
		b.Addi(isa.RAX, isa.RAX, 1)
	}
	// Pointer chase: serial loads through a self-referencing cell.
	for i := 0; i < k.PointerChase; i++ {
		b.Load(isa.R10, isa.R15, 256)
		b.Add(isa.R10, isa.R10, isa.R15)
		b.Load(isa.R10, isa.R10, 256)
	}
	// Store-load pairs: the store's address comes from an index load plus a
	// dependent chain, so younger loads reach the disambiguator first.
	for i := 0; i < k.Pairs; i++ {
		b.Load(isa.RBX, isa.R15, 8) // index cell (zero, warm)
		for j := 0; j < k.Delay; j++ {
			b.Addi(isa.RBX, isa.RBX, 0)
		}
		b.Add(isa.RBX, isa.RBX, isa.R15)
		storeOff := int32(64 + i*128)
		loadOff := storeOff + 64
		if k.AliasEvery > 0 && i%k.AliasEvery == 0 {
			loadOff = storeOff
		}
		b.Store(isa.RBX, storeOff, isa.R9)
		b.Load(isa.R11, isa.R15, loadOff)
	}
	b.Subi(isa.R14, isa.R14, 1)
	b.Jnz(isa.R14, "loop")
	b.Halt()
	return b.MustAssemble(base)
}

// OverheadRow is one Fig 12 bar pair.
type OverheadRow struct {
	Name         string
	BaseCycles   int64
	SSBDCycles   int64
	OverheadFrac float64 // (ssbd-base)/base
}

// SSBDOverheadResult reproduces Fig 12.
type SSBDOverheadResult struct {
	Rows []OverheadRow
}

// runKernel executes one kernel on a fresh machine and returns its cycles.
func runKernel(cfg kernel.Config, k SpecKernel) int64 {
	kn := kernel.New(cfg)
	p := kn.NewProcess(k.Name, kernel.DomainUser)
	const base = 0x400000
	const dataVA = 0x10000
	code := k.Build(base)
	p.MapCode(base, code)
	p.MapData(dataVA, 4*mem.PageSize)
	p.Regs[isa.R15] = dataVA
	res := kn.Run(p, base, 1<<22)
	if res.Stop != pipeline.StopHalt {
		panic(fmt.Sprintf("workload: %s stopped with %v", k.Name, res.Stop))
	}
	return res.Cycles
}

// SSBDOverhead measures each kernel with SSBD disabled and enabled. Each
// off/on pair runs on fresh machines, so the benchmarks run in parallel on
// the harness worker pool with rows kept in kernel order.
func SSBDOverhead(cfg kernel.Config, kernels []SpecKernel) SSBDOverheadResult {
	rows := harness.Trials(harness.Workers(cfg.Parallelism), len(kernels), func(i int) OverheadRow {
		k := kernels[i]
		base := runKernel(cfg, k)
		scfg := cfg
		scfg.SSBD = true
		ssbd := runKernel(scfg, k)
		return OverheadRow{
			Name:         k.Name,
			BaseCycles:   base,
			SSBDCycles:   ssbd,
			OverheadFrac: float64(ssbd-base) / float64(base),
		}
	})
	return SSBDOverheadResult{Rows: rows}
}

func (r SSBDOverheadResult) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 12 — SSBD performance overhead on SPECrate-like kernels\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %9s\n", "benchmark", "base", "ssbd", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %10d %10d %8.1f%%\n", row.Name, row.BaseCycles, row.SSBDCycles, 100*row.OverheadFrac)
	}
	return sb.String()
}
