// Package workload provides the synthetic victim workloads the paper's
// evaluation needs: CNN inference traces for the Fig 11 fingerprinting
// experiment and SPECrate-like kernels for the Fig 12 SSBD overhead study.
//
// The CNN models are modeled at the level that matters to SSBP: a model is a
// set of store-load sites (layers' inner loops), each with a characteristic
// rate of read-after-write aliasing. Executing a model imprints a
// characteristic distribution of C3 counter values across SSBP entries —
// the fingerprint the attacker scans.
package workload

import "math/rand"

// CNNModel describes one network's memory-access signature.
type CNNModel struct {
	Name string
	// SiteAliasing is the probability of an aliasing store-load pair at
	// each site; its length is the number of active sites (hot loops).
	SiteAliasing []float64
	// SiteRuns is how many times each site executes per scheduling quantum
	// (cycled if shorter than SiteAliasing). Together with the aliasing
	// probability it determines where the site's residual C3 value lands:
	// a retrain sets C3 to 15 and every following execution drains one step.
	SiteRuns []int
}

// rep builds a site-aliasing vector by cycling through a pattern.
func rep(n int, pattern ...float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// CNNModels returns the six networks fingerprinted in Fig 11. The aliasing
// signatures reflect each architecture's flavor: VGG's uniform deep conv
// stacks, GoogLeNet's heterogeneous inception branches, ResNet's
// skip-connection writes that feed immediately into the next block,
// SE-ResNet's extra squeeze-excitation reductions, MobileNet's depthwise
// separable pairs, and AlexNet's few large layers.
func CNNModels() []CNNModel {
	return []CNNModel{
		{Name: "vgg16", SiteAliasing: rep(16, 0.6), SiteRuns: []int{8}},
		{Name: "googlenet", SiteAliasing: rep(20, 0.3, 0.9, 0.5, 0.7), SiteRuns: []int{4, 13, 7, 10}},
		{Name: "resnet18", SiteAliasing: rep(14, 0.9, 0.35), SiteRuns: []int{6, 11}},
		{Name: "sersnet18", SiteAliasing: rep(17, 0.9, 0.35, 0.95), SiteRuns: []int{6, 11, 3}},
		{Name: "mobilenet", SiteAliasing: rep(18, 0.2, 0.35), SiteRuns: []int{13, 12}},
		{Name: "alexnet", SiteAliasing: rep(8, 0.75), SiteRuns: []int{15, 5}},
	}
}

// ModelIndex returns the index of a model by name, or -1.
func ModelIndex(name string) int {
	for i, m := range CNNModels() {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// AliasingSchedule draws the per-run aliasing decisions for one scheduling
// quantum of the model: element [site][run] says whether that execution of
// the site's store-load pair aliases.
func (m CNNModel) AliasingSchedule(r *rand.Rand) [][]bool {
	out := make([][]bool, len(m.SiteAliasing))
	for s, p := range m.SiteAliasing {
		runs := make([]bool, m.SiteRuns[s%len(m.SiteRuns)])
		for i := range runs {
			runs[i] = r.Float64() < p
		}
		out[s] = runs
	}
	return out
}
