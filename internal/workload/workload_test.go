package workload

import (
	"math/rand"
	"testing"

	"zenspec/internal/isa"
	"zenspec/internal/kernel"
	"zenspec/internal/mem"
	"zenspec/internal/pipeline"
)

func TestCNNModelsWellFormed(t *testing.T) {
	models := CNNModels()
	if len(models) != 6 {
		t.Fatalf("%d models, want 6 (Fig 11)", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		if names[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		names[m.Name] = true
		if len(m.SiteAliasing) == 0 || len(m.SiteRuns) == 0 {
			t.Errorf("%s: empty signature", m.Name)
		}
		for _, p := range m.SiteAliasing {
			if p < 0 || p > 1 {
				t.Errorf("%s: aliasing probability %v", m.Name, p)
			}
		}
		for _, r := range m.SiteRuns {
			if r <= 0 {
				t.Errorf("%s: non-positive run count", m.Name)
			}
		}
	}
	for _, want := range []string{"vgg16", "googlenet", "resnet18", "sersnet18"} {
		if !names[want] {
			t.Errorf("paper model %q missing", want)
		}
	}
}

func TestModelIndex(t *testing.T) {
	if ModelIndex("vgg16") != 0 {
		t.Error("vgg16 index")
	}
	if ModelIndex("nope") != -1 {
		t.Error("missing model index")
	}
}

func TestAliasingScheduleShape(t *testing.T) {
	m := CNNModels()[1] // googlenet, heterogeneous
	r := rand.New(rand.NewSource(1))
	sched := m.AliasingSchedule(r)
	if len(sched) != len(m.SiteAliasing) {
		t.Fatalf("%d sites, want %d", len(sched), len(m.SiteAliasing))
	}
	for s, runs := range sched {
		want := m.SiteRuns[s%len(m.SiteRuns)]
		if len(runs) != want {
			t.Errorf("site %d has %d runs, want %d", s, len(runs), want)
		}
	}
	// Statistically, a 0.9-probability site aliases more than a 0.3 one.
	m2 := CNNModels()[2] // resnet18: 0.9 / 0.35 alternating
	hi, lo := 0, 0
	for trial := 0; trial < 50; trial++ {
		sched := m2.AliasingSchedule(r)
		for s, runs := range sched {
			for _, a := range runs {
				if a {
					if s%2 == 0 {
						hi++
					} else {
						lo++
					}
				}
			}
		}
	}
	if hi <= lo {
		t.Errorf("aliasing draws ignore probabilities: hi=%d lo=%d", hi, lo)
	}
}

func TestSpecKernelsWellFormed(t *testing.T) {
	ks := SpecKernels()
	if len(ks) != 10 {
		t.Fatalf("%d kernels, want 10 (Fig 12)", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
		if k.Iterations <= 0 || k.Pairs < 0 {
			t.Errorf("%s: bad parameters %+v", k.Name, k)
		}
		code := k.Build(0x400000)
		if len(code) == 0 {
			t.Errorf("%s: empty build", k.Name)
		}
	}
	for _, want := range []string{"perlbench", "exchange2", "mcf", "xz"} {
		if !names[want] {
			t.Errorf("benchmark %q missing", want)
		}
	}
}

// TestFig12OverheadShape is the headline Fig 12 claim: SSBD costs more than
// 20% on perlbench and exchange2 and visibly less on the rest.
func TestFig12OverheadShape(t *testing.T) {
	res := SSBDOverhead(kernel.Config{Seed: 1}, SpecKernels())
	t.Logf("\n%s", res)
	byName := map[string]OverheadRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		if row.BaseCycles <= 0 || row.SSBDCycles <= 0 {
			t.Errorf("%s: non-positive cycles", row.Name)
		}
	}
	for _, heavy := range []string{"perlbench", "exchange2"} {
		if byName[heavy].OverheadFrac <= 0.20 {
			t.Errorf("%s overhead %.1f%%, want > 20%% (the paper's headline)",
				heavy, 100*byName[heavy].OverheadFrac)
		}
	}
	for _, light := range []string{"x264", "omnetpp", "deepsjeng"} {
		if byName[light].OverheadFrac >= 0.20 {
			t.Errorf("%s overhead %.1f%%, want < 20%%", light, 100*byName[light].OverheadFrac)
		}
	}
	// SSBD must never speed a kernel up by more than noise.
	for _, row := range res.Rows {
		if row.OverheadFrac < -0.05 {
			t.Errorf("%s: SSBD sped the kernel up by %.1f%%", row.Name, -100*row.OverheadFrac)
		}
	}
}

func TestRunKernelDeterministic(t *testing.T) {
	k := SpecKernels()[0]
	a := runKernel(kernel.Config{Seed: 3}, k)
	b := runKernel(kernel.Config{Seed: 3}, k)
	if a != b {
		t.Errorf("non-deterministic kernel run: %d vs %d", a, b)
	}
}

// TestSpecKernelsArchitecturallyCorrect: every generated kernel produces the
// same final registers on the out-of-order core as on the golden in-order
// interpreter (the kernels contain branches, pointer chases and
// speculation-heavy store-load mixes, so this is a strong end-to-end check).
func TestSpecKernelsArchitecturallyCorrect(t *testing.T) {
	for _, k := range SpecKernels() {
		k := k
		k.Iterations = 12 // keep the golden run cheap
		code := k.Build(0x400000)

		kn := kernel.New(kernel.Config{Seed: 1})
		p := kn.NewProcess(k.Name, kernel.DomainUser)
		p.MapCode(0x400000, code)
		p.MapData(0x10000, 4*mem.PageSize)
		p.Regs[isa.R15] = 0x10000
		res := kn.Run(p, 0x400000, 1<<22)
		if res.Stop != pipeline.StopHalt {
			t.Fatalf("%s: stop %v", k.Name, res.Stop)
		}

		kg := kernel.New(kernel.Config{Seed: 1})
		pg := kg.NewProcess(k.Name, kernel.DomainUser)
		pg.MapCode(0x400000, code)
		pg.MapData(0x10000, 4*mem.PageSize)
		pg.Regs[isa.R15] = 0x10000
		gres := pipeline.Golden(kg.Phys(), pg, 0x400000, &pg.Regs, 0)
		if gres.Stop != pipeline.StopHalt {
			t.Fatalf("%s: golden stop %v", k.Name, gres.Stop)
		}
		if p.Regs != pg.Regs {
			t.Errorf("%s: register divergence\nooo:    %v\ngolden: %v", k.Name, p.Regs, pg.Regs)
		}
	}
}
